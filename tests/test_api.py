"""Tests for the engine facade: requests, responses, registry, streaming."""

from typing import Iterator, List

import pytest

from repro import (
    EnumerationConfig,
    EnumerationRequest,
    Graph,
    KPlexEngine,
    ParallelConfig,
    count_maximal_kplexes,
    enumerate_maximal_kplexes,
    parallel_enumerate_maximal_kplexes,
)
from repro.api import (
    TERMINATION_CANCELLED,
    TERMINATION_COMPLETED,
    TERMINATION_RESULT_LIMIT,
    TERMINATION_TIMEOUT,
    CancellationToken,
    Solver,
    SolverRun,
    get_solver,
    register_solver,
    solver_names,
    solver_table,
    unregister_solver,
)
from repro.baselines import brute_force_vertex_sets
from repro.core.kplex import KPlex
from repro.errors import ParameterError
from repro.graph import generators

from _helpers import random_graph_cases, vertex_sets

REQUIRED_SOLVERS = ("ours", "fp", "listplex", "bron-kerbosch", "brute-force", "parallel")


@pytest.fixture
def engine() -> KPlexEngine:
    return KPlexEngine()


@pytest.fixture
def caveman() -> Graph:
    """A graph with several seed groups, so streaming has many stops."""
    return generators.relaxed_caveman(4, 7, rewire_probability=0.25, seed=9)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
def test_every_required_solver_is_registered():
    names = solver_names()
    for name in REQUIRED_SOLVERS:
        assert name in names


def test_unknown_solver_raises_parameter_error():
    with pytest.raises(ParameterError, match="unknown solver"):
        get_solver("definitely-not-a-solver")


def test_unknown_solver_at_solve_time(engine, diamond):
    request = EnumerationRequest(graph=diamond, k=2, q=3, solver="nope")
    with pytest.raises(ParameterError, match="unknown solver"):
        engine.solve(request)


def test_aliases_resolve_to_primary_solver():
    assert get_solver("bk") is get_solver("bron-kerbosch")
    assert get_solver("OURS") is get_solver("ours")  # case-insensitive


def test_register_and_unregister_custom_solver(diamond):
    @register_solver("test-static")
    class StaticSolver(Solver):
        description = "returns a canned result"
        requires_diameter_bound = False

        def start(self, request) -> SolverRun:
            plex = KPlex.from_vertices(request.graph, [0, 1, 2], request.k)
            return SolverRun(results=iter([plex]))

    try:
        assert "test-static" in solver_names()
        response = KPlexEngine().solve(
            EnumerationRequest(graph=diamond, k=2, q=3, solver="test-static")
        )
        assert response.vertex_sets() == [(0, 1, 2)]
        assert response.solver == "test-static"
    finally:
        unregister_solver("test-static")
    assert "test-static" not in solver_names()


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError):

        @register_solver("ours")
        class Clash(Solver):
            def start(self, request):  # pragma: no cover - never called
                raise NotImplementedError


def test_solver_table_lists_capabilities():
    rows = {row["solver"]: row for row in solver_table()}
    assert rows["ours"]["supports_query"] is True
    assert rows["bron-kerbosch"]["requires_diameter_bound"] is False
    assert rows["parallel"]["streaming"] == "eager"


# --------------------------------------------------------------------------- #
# Request validation (the single validation path)
# --------------------------------------------------------------------------- #
def test_request_rejects_bad_parameters(diamond):
    with pytest.raises(ParameterError):
        EnumerationRequest(graph=diamond, k=0, q=3)
    with pytest.raises(ParameterError):
        EnumerationRequest(graph=diamond, k=2, q=0)
    with pytest.raises(ParameterError):
        EnumerationRequest(graph="not a graph", k=2, q=3)
    with pytest.raises(ParameterError):
        EnumerationRequest(graph=diamond, k=2, q=3, timeout_seconds=-1)
    with pytest.raises(ParameterError):
        EnumerationRequest(graph=diamond, k=2, q=3, max_results=0)
    with pytest.raises(ParameterError, match="unknown variant"):
        EnumerationRequest(graph=diamond, k=2, q=3, variant="bogus")
    with pytest.raises(ParameterError, match="not both"):
        EnumerationRequest(
            graph=diamond, k=2, q=3, variant="basic", config=EnumerationConfig.ours()
        )


def test_request_rejects_bad_query(diamond):
    with pytest.raises(ParameterError, match="not in the graph"):
        EnumerationRequest(graph=diamond, k=2, q=3, query_vertices=(99,))
    with pytest.raises(ParameterError, match="at least one query vertex"):
        EnumerationRequest(graph=diamond, k=2, q=3, query_vertices=())
    with pytest.raises(ParameterError, match="larger than q"):
        EnumerationRequest(graph=diamond, k=2, q=3, query_vertices=(0, 1, 2, 3))


def test_diameter_bound_is_solver_specific(engine, diamond):
    # q < 2k - 1 is invalid for the decomposed algorithms ...
    request = EnumerationRequest(graph=diamond, k=3, q=2, solver="ours")
    with pytest.raises(ParameterError, match="2k - 1"):
        engine.solve(request)
    # ... but fine for the Bron-Kerbosch and brute-force oracles.
    bk = engine.solve(EnumerationRequest(graph=diamond, k=3, q=2, solver="bron-kerbosch"))
    oracle = engine.solve(EnumerationRequest(graph=diamond, k=3, q=2, solver="brute-force"))
    assert vertex_sets(bk.kplexes) == vertex_sets(oracle.kplexes)


def test_query_unsupported_by_baseline_solvers(engine, diamond):
    request = EnumerationRequest(
        graph=diamond, k=2, q=3, solver="fp", query_vertices=(0,)
    )
    with pytest.raises(ParameterError, match="query"):
        engine.solve(request)


# --------------------------------------------------------------------------- #
# solve() and the response contract
# --------------------------------------------------------------------------- #
def test_solve_matches_legacy_api(engine, caveman):
    response = engine.solve(EnumerationRequest(graph=caveman, k=2, q=5))
    legacy = enumerate_maximal_kplexes(caveman, 2, 5)
    assert vertex_sets(response.kplexes) == vertex_sets(legacy)
    assert response.count == len(legacy)
    assert response.termination == TERMINATION_COMPLETED
    assert response.completed
    assert response.k == 2 and response.q == 5
    assert response.elapsed_seconds >= 0
    assert response.statistics.branch_calls > 0
    assert response.solver_metadata["variant"] == "Ours"


def test_response_as_dict_is_json_friendly(engine, diamond):
    import json

    response = engine.solve(EnumerationRequest(graph=diamond, k=2, q=3))
    payload = response.as_dict()
    assert payload["count"] == response.count
    assert payload["termination"] == "completed"
    assert payload["statistics"]["outputs"] == response.count
    json.dumps(payload)  # must not raise


def test_solve_with_variant_override(engine, caveman):
    ours = engine.solve(EnumerationRequest(graph=caveman, k=2, q=5))
    basic = engine.solve(
        EnumerationRequest(graph=caveman, k=2, q=5, solver="ours", variant="basic")
    )
    assert vertex_sets(ours.kplexes) == vertex_sets(basic.kplexes)
    assert basic.solver_metadata["variant"] == "Basic"
    # The ablation variant explores at least as many branch nodes.
    assert basic.statistics.branch_calls >= ours.statistics.branch_calls


def test_query_through_engine(engine, caveman):
    from repro import enumerate_kplexes_containing

    response = engine.solve(
        EnumerationRequest(graph=caveman, k=2, q=5, query_vertices=(0,))
    )
    direct = enumerate_kplexes_containing(caveman, [0], 2, 5)
    assert vertex_sets(response.kplexes) == vertex_sets(direct)
    assert all(0 in plex.vertices for plex in response.kplexes)


def test_count_matches_solve(engine, caveman):
    request = EnumerationRequest(graph=caveman, k=2, q=5)
    assert engine.count(request) == engine.solve(request).count
    assert count_maximal_kplexes(caveman, 2, 5) == engine.count(request)


# --------------------------------------------------------------------------- #
# stream(): laziness, cancellation, timeout, budget, progress
# --------------------------------------------------------------------------- #
def _probe_solver(pulls: List[int]):
    """Register a solver that records how far its generator has been driven."""

    @register_solver("test-probe", replace=True)
    class ProbeSolver(Solver):
        requires_diameter_bound = False

        def start(self, request) -> SolverRun:
            def generate() -> Iterator[KPlex]:
                for index in range(10):
                    pulls.append(index)
                    yield KPlex.from_vertices(request.graph, [0, 1, 2], request.k)

            return SolverRun(results=generate())

    return ProbeSolver


def test_stream_is_lazy(engine, diamond):
    pulls: List[int] = []
    _probe_solver(pulls)
    try:
        request = EnumerationRequest(graph=diamond, k=2, q=3, solver="test-probe")
        stream = engine.stream(request)
        assert pulls == []  # creating the stream does no work
        next(stream)
        assert pulls == [0]  # exactly one result was produced
        next(stream)
        assert pulls == [0, 1]
    finally:
        unregister_solver("test-probe")


def test_stream_early_cancellation(engine, diamond):
    pulls: List[int] = []
    _probe_solver(pulls)
    try:
        request = EnumerationRequest(graph=diamond, k=2, q=3, solver="test-probe")
        cancel = CancellationToken()
        collected = []
        for plex in engine.stream(request, cancel=cancel):
            collected.append(plex)
            cancel.cancel()
        assert len(collected) == 1
        assert pulls == [0]  # the generator was never driven past the first result
    finally:
        unregister_solver("test-probe")


def test_solve_reports_cancellation(engine, caveman):
    cancel = CancellationToken()
    cancel.cancel()  # cancelled before it even starts
    response = engine.solve(
        EnumerationRequest(graph=caveman, k=2, q=5), cancel=cancel
    )
    assert response.termination == TERMINATION_CANCELLED
    assert response.count == 0


def test_zero_timeout_stops_immediately(engine, caveman):
    response = engine.solve(
        EnumerationRequest(graph=caveman, k=2, q=5, timeout_seconds=0.0)
    )
    assert response.termination == TERMINATION_TIMEOUT
    assert response.count == 0


def test_timeout_uses_injected_clock(caveman):
    # A fake clock that advances one second per reading: the deadline passes
    # right after the first result is yielded.
    ticks = iter(range(1000))
    engine = KPlexEngine(clock=lambda: float(next(ticks)))
    response = engine.solve(
        EnumerationRequest(graph=caveman, k=2, q=5, timeout_seconds=1.5)
    )
    assert response.termination == TERMINATION_TIMEOUT
    assert response.count <= 1


def test_max_results_budget(engine, caveman):
    response = engine.solve(
        EnumerationRequest(graph=caveman, k=2, q=5, max_results=2)
    )
    assert response.count == 2
    assert response.termination == TERMINATION_RESULT_LIMIT
    total = engine.count(EnumerationRequest(graph=caveman, k=2, q=5))
    assert total > 2


def test_progress_callback(engine, caveman):
    events = []
    response = engine.solve(
        EnumerationRequest(graph=caveman, k=2, q=5), on_progress=events.append
    )
    assert len(events) == response.count
    assert [event.count for event in events] == list(range(1, response.count + 1))
    assert all(event.elapsed_seconds >= 0 for event in events)
    assert vertex_sets(event.latest for event in events) == vertex_sets(response.kplexes)


# --------------------------------------------------------------------------- #
# solve_batch()
# --------------------------------------------------------------------------- #
def test_solve_batch_preserves_request_order(engine, caveman):
    requests = [
        EnumerationRequest(graph=caveman, k=2, q=q, solver=solver)
        for q, solver in ((7, "ours"), (5, "listplex"), (6, "ours"), (5, "fp"))
    ]
    responses = engine.solve_batch(requests)
    assert len(responses) == len(requests)
    for request, response in zip(requests, responses):
        assert response.request is request
        assert response.solver == request.solver
        expected = engine.solve(request)
        assert vertex_sets(response.kplexes) == vertex_sets(expected.kplexes)


def test_solve_batch_threaded_matches_sequential(engine, caveman):
    requests = [EnumerationRequest(graph=caveman, k=2, q=q) for q in (5, 6, 7)]
    sequential = engine.solve_batch(requests)
    threaded = engine.solve_batch(requests, max_workers=3)
    for one, two in zip(sequential, threaded):
        assert vertex_sets(one.kplexes) == vertex_sets(two.kplexes)


# --------------------------------------------------------------------------- #
# Cross-solver equivalence: every registered backend agrees with the oracle
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("k,q", [(2, 3), (2, 4), (3, 5)])
def test_all_solvers_agree_on_small_graphs(engine, k, q):
    solvers = {
        "ours": {},
        "ours_p": {},
        "basic": {},
        "fp": {},
        "listplex": {},
        "bron-kerbosch": {},
        "parallel": {"options": {"num_workers": 2, "use_processes": False}},
    }
    for graph in random_graph_cases(4, max_vertices=11, seed=k * 100 + q):
        oracle = brute_force_vertex_sets(graph, k, q)
        for solver, extra in solvers.items():
            response = engine.solve(
                EnumerationRequest(graph=graph, k=k, q=q, solver=solver, **extra)
            )
            assert vertex_sets(response.kplexes) == oracle, (
                f"solver {solver} disagrees with the oracle on k={k}, q={q}"
            )
            assert response.termination == TERMINATION_COMPLETED


# --------------------------------------------------------------------------- #
# Legacy shims route through the engine
# --------------------------------------------------------------------------- #
def test_parallel_shim_matches_engine(engine, caveman):
    config = ParallelConfig(num_workers=2, use_processes=False)
    legacy = parallel_enumerate_maximal_kplexes(caveman, 2, 5, config)
    direct = engine.solve(
        EnumerationRequest(
            graph=caveman, k=2, q=5, solver="parallel", options={"parallel": config}
        )
    )
    assert vertex_sets(legacy.kplexes) == vertex_sets(direct.kplexes)
    assert legacy.statistics.outputs == direct.count
    assert direct.solver_metadata["num_workers"] == 2


def test_shims_validate_through_single_path(caveman):
    with pytest.raises(ParameterError):
        enumerate_maximal_kplexes(caveman, 0, 5)
    with pytest.raises(ParameterError):
        parallel_enumerate_maximal_kplexes(caveman, 3, 2)  # violates q >= 2k - 1


def test_fixed_config_solvers_reject_variant_override(engine, diamond):
    for solver in ("fp", "bron-kerbosch", "brute-force"):
        with pytest.raises(ParameterError, match="fixed configuration"):
            engine.solve(
                EnumerationRequest(graph=diamond, k=2, q=3, solver=solver, variant="basic")
            )


def test_legacy_shim_honours_config_sort_flag(caveman):
    from repro import KPlexEnumerator

    config = EnumerationConfig(sort_results=False)
    via_shim = enumerate_maximal_kplexes(caveman, 2, 5, config)
    direct = KPlexEnumerator(caveman, 2, 5, config).run().kplexes
    assert [p.vertices for p in via_shim] == [p.vertices for p in direct]


def test_early_stopped_runs_still_record_elapsed_time(engine, caveman):
    for solver in ("ours", "fp"):
        response = engine.solve(
            EnumerationRequest(graph=caveman, k=2, q=5, solver=solver, max_results=1)
        )
        assert response.count == 1
        assert response.statistics.elapsed_seconds > 0


def test_parallel_solver_rejects_unknown_options(engine, caveman):
    request = EnumerationRequest(
        graph=caveman, k=2, q=5, solver="parallel", options={"num_worker": 8}
    )
    with pytest.raises(ParameterError, match="unknown parallel solver options"):
        engine.solve(request)
