"""Prepared-graph cache — repeated queries on the same graph.

The ROADMAP's service scenario sends many enumeration requests against the
same loaded graph.  Before the prepared-graph index, every request re-ran the
(q-k)-core shrinking, the degeneracy ordering and the adjacency construction
from scratch; with the index they are computed once per graph and every
further request starts at the search proper.

This bench replays a repeated-query workload twice — with the cache
invalidated before every request (the old behaviour) and with the cache warm
— and asserts the headline claim of the optimisation: at least a 5x
total-time win on preprocessing-dominated traffic.
"""

import time

from repro.analysis.reporting import render_table
from repro.api import EnumerationRequest, KPlexEngine
from repro.datasets import load_dataset
from repro.graph import invalidate

from _bench_utils import run_once

REPEATS = 20


def _replay(engine, graph, queries, cold: bool) -> float:
    if not cold:
        invalidate(graph)  # pay the one-time preparation inside the timing
    started = time.perf_counter()
    for k, q in queries:
        if cold:
            invalidate(graph)
        engine.solve(EnumerationRequest(graph=graph, k=k, q=q))
    return time.perf_counter() - started


def _compare(dataset: str, queries):
    graph = load_dataset(dataset)
    engine = KPlexEngine()
    cold_seconds = _replay(engine, graph, queries, cold=True)
    warm_seconds = _replay(engine, graph, queries, cold=False)
    return {
        "dataset": dataset,
        "requests": len(queries),
        "uncached_seconds": round(cold_seconds, 4),
        "cached_seconds": round(warm_seconds, 4),
        "speedup": round(cold_seconds / warm_seconds, 2) if warm_seconds else 0.0,
    }


def test_bench_prepared_cache_repeated_queries(benchmark, scale):
    def run():
        # Preprocessing-dominated: high q keeps the (q-k)-core tiny, so the
        # request cost is almost entirely the graph-structure work the
        # prepared index caches.
        rows = [
            _compare("enwiki-2021", [(2, 20)] * REPEATS),
            _compare("soc-pokec", [(2, 16)] * REPEATS),
            # Mixed parameters against one graph: every (q-k) level is cached
            # independently, the ordering and CSR arrays are shared.
            _compare("wiki-vote", [(2, 10), (2, 12), (3, 12), (2, 14)] * (REPEATS // 4)),
        ]
        return rows

    rows = run_once(benchmark, run)
    print()
    print(render_table(rows, title="Prepared-graph cache — repeated-query replay"))
    preprocessing_dominated = rows[:2]
    assert all(row["speedup"] >= 5.0 for row in preprocessing_dominated), rows
    # The mixed search-heavy row gains little from the cache; gate it with a
    # noise margin so shared CI runners cannot flake the suite.
    assert all(row["speedup"] >= 0.8 for row in rows), rows
