"""Shared machinery for the experiment drivers.

Every experiment in the paper boils down to "run algorithm A on dataset D
with parameters (k, q) and record the running time, the number of k-plexes
and, for some tables, the peak memory".  :func:`run_algorithm` provides that
single measurement, and :class:`RunRecord` is the row format every table and
figure driver builds on.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..baselines.fp import FPLike
from ..baselines.listplex import ListPlexLike
from ..core.config import EnumerationConfig
from ..core.enumerator import EnumerationResult, KPlexEnumerator
from ..graph import Graph

ALGORITHM_FP = "FP"
ALGORITHM_LISTPLEX = "ListPlex"
ALGORITHM_OURS = "Ours"
ALGORITHM_OURS_P = "Ours_P"
ALGORITHM_BASIC = "Basic"
ALGORITHM_BASIC_R1 = "Basic+R1"
ALGORITHM_BASIC_R2 = "Basic+R2"
ALGORITHM_OURS_NO_UB = "Ours\\ub"
ALGORITHM_OURS_FP_UB = "Ours\\ub+fp"

SEQUENTIAL_ALGORITHMS = (ALGORITHM_FP, ALGORITHM_LISTPLEX, ALGORITHM_OURS_P, ALGORITHM_OURS)
UPPER_BOUND_ABLATION = (ALGORITHM_OURS_NO_UB, ALGORITHM_OURS_FP_UB, ALGORITHM_OURS)
PRUNING_ABLATION = (ALGORITHM_BASIC, ALGORITHM_BASIC_R1, ALGORITHM_BASIC_R2, ALGORITHM_OURS)


@dataclass
class RunRecord:
    """One measurement: algorithm x dataset x (k, q)."""

    algorithm: str
    dataset: str
    k: int
    q: int
    num_kplexes: int
    seconds: float
    branch_calls: int = 0
    peak_memory_bytes: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        """Flatten the record for table rendering."""
        row: Dict[str, object] = {
            "dataset": self.dataset,
            "k": self.k,
            "q": self.q,
            "algorithm": self.algorithm,
            "kplexes": self.num_kplexes,
            "seconds": round(self.seconds, 4),
        }
        if self.branch_calls:
            row["branch_calls"] = self.branch_calls
        if self.peak_memory_bytes:
            row["peak_memory_mib"] = round(self.peak_memory_bytes / (1024 * 1024), 3)
        row.update(self.extra)
        return row


def _variant_runner(config: EnumerationConfig) -> Callable[[Graph, int, int], EnumerationResult]:
    def run(graph: Graph, k: int, q: int) -> EnumerationResult:
        return KPlexEnumerator(graph, k, q, config).run()

    return run


_RUNNERS: Dict[str, Callable[[Graph, int, int], EnumerationResult]] = {
    ALGORITHM_FP: lambda graph, k, q: FPLike(graph, k, q).run(),
    ALGORITHM_LISTPLEX: lambda graph, k, q: ListPlexLike(graph, k, q).run(),
    ALGORITHM_OURS: _variant_runner(EnumerationConfig.ours()),
    ALGORITHM_OURS_P: _variant_runner(EnumerationConfig.ours_p()),
    ALGORITHM_BASIC: _variant_runner(EnumerationConfig.basic()),
    ALGORITHM_BASIC_R1: _variant_runner(EnumerationConfig.basic_with_r1()),
    ALGORITHM_BASIC_R2: _variant_runner(EnumerationConfig.basic_with_r2()),
    ALGORITHM_OURS_NO_UB: _variant_runner(EnumerationConfig.without_upper_bound()),
    ALGORITHM_OURS_FP_UB: _variant_runner(EnumerationConfig.with_fp_upper_bound()),
}


def algorithm_names() -> List[str]:
    """Names accepted by :func:`run_algorithm`."""
    return list(_RUNNERS)


def run_algorithm(
    algorithm: str,
    graph: Graph,
    dataset: str,
    k: int,
    q: int,
    measure_memory: bool = False,
) -> RunRecord:
    """Run one algorithm on one workload and return the measurement record."""
    try:
        runner = _RUNNERS[algorithm]
    except KeyError as exc:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {sorted(_RUNNERS)}"
        ) from exc

    peak = 0
    if measure_memory:
        tracemalloc.start()
    started = time.perf_counter()
    result = runner(graph, k, q)
    elapsed = time.perf_counter() - started
    if measure_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

    return RunRecord(
        algorithm=algorithm,
        dataset=dataset,
        k=k,
        q=q,
        num_kplexes=result.count,
        seconds=elapsed,
        branch_calls=result.statistics.branch_calls,
        peak_memory_bytes=peak,
    )


def cross_check(records: List[RunRecord]) -> bool:
    """Return ``True`` when all records of a workload report the same result count.

    The paper verifies that FP, ListPlex and Ours return identical result
    sets; the experiment tables carry the count so this lighter check can be
    asserted on every row group.
    """
    by_workload: Dict[object, set] = {}
    for record in records:
        key = (record.dataset, record.k, record.q)
        by_workload.setdefault(key, set()).add(record.num_kplexes)
    return all(len(counts) == 1 for counts in by_workload.values())
