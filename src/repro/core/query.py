"""Query-anchored enumeration (community search with k-plexes).

A common way the paper's motivating applications use cohesive-subgraph mining
is *community search*: given one or more query vertices (a suspected
criminal's account, a protein of interest), list the cohesive groups that
contain them.  This module enumerates every maximal k-plex with at least
``q`` vertices that contains a given set of query vertices, re-using the
branch-and-bound engine but anchoring the search at the query instead of
walking all seeds in degeneracy order:

* the partial solution starts as the query set itself (which must be a
  k-plex, otherwise no result exists);
* candidates are the vertices within two hops of every query vertex
  (Theorem 3.3 restricts members of any result to that region), shrunk by
  the Corollary 5.2 common-neighbour rule relative to each query vertex;
* no exclusive set is needed initially, because every possible extender of a
  result is itself within the candidate region and therefore examined by the
  search.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..graph import Graph
from ..graph.dense import DenseSubgraph
from .branch import BranchSearcher
from .config import EnumerationConfig
from .kplex import KPlex, is_kplex, validate_parameters, validate_query_vertices
from .pruning import corollary_52_keep
from .seeds import SeedContext, SubTask
from .stats import SearchStatistics


def _candidate_region(graph: Graph, query: Sequence[int], k: int, q: int,
                      config: EnumerationConfig) -> List[int]:
    """Vertices that may co-occur with every query vertex in a valid result."""
    region = set(graph.neighborhood_within_two_hops(query[0]))
    for vertex in query[1:]:
        region &= graph.neighborhood_within_two_hops(vertex)
    region.update(query)
    if config.use_seed_pruning:
        for vertex in query:
            region = corollary_52_keep(graph, vertex, region, k, q)
            region.update(query)
    return sorted(region)


def enumerate_kplexes_containing(
    graph: Graph,
    query_vertices: Iterable[int],
    k: int,
    q: int,
    config: Optional[EnumerationConfig] = None,
) -> List[KPlex]:
    """Enumerate all maximal k-plexes with ``>= q`` vertices containing the query.

    ``query_vertices`` are internal vertex ids of ``graph``.  Maximality is
    with respect to the whole graph (a returned set cannot be extended by any
    vertex, inside or outside the query's neighbourhood).  Raises
    :class:`ParameterError` when the query itself is not a k-plex, exceeds
    ``q`` in no possible way, or contains unknown vertices.
    """
    validate_parameters(k, q)
    config = config or EnumerationConfig.ours()
    query = list(validate_query_vertices(graph, query_vertices, q))
    if not is_kplex(graph, query, k):
        return []

    region = _candidate_region(graph, query, k, q, config)
    if len(region) < q:
        return []

    anchor = query[0]
    ordered = [anchor] + [v for v in region if v != anchor]
    subgraph = DenseSubgraph(graph, ordered)
    anchor_local = 0
    query_mask = subgraph.mask_of_parents(query)
    candidate_mask = subgraph.full_mask & ~query_mask
    degrees = [subgraph.degree(v) for v in range(subgraph.size)]

    context = SeedContext(
        seed_vertex=anchor,
        subgraph=subgraph,
        seed_local=anchor_local,
        candidate_mask=candidate_mask,
        two_hop_mask=0,
        external_vertices=[],
        external_adjacency=[],
        degrees=degrees,
        pair_ok=None,
    )
    stats = SearchStatistics()
    results: List[KPlex] = []
    searcher = BranchSearcher(
        context,
        k,
        q,
        # The pair matrix is built relative to a seed-subgraph structure that
        # does not apply to an anchored query, so R2 is disabled here; every
        # other technique (bounds, pivoting) applies unchanged.
        config.with_changes(use_pair_pruning=False),
        stats,
        on_result=lambda mask: results.append(
            KPlex.from_vertices(graph, subgraph.parents_of_mask(mask), k)
        ),
    )
    searcher.run_subtask(
        SubTask(p_mask=query_mask, c_mask=candidate_mask, x_mask=0, x_external_mask=0)
    )
    results.sort(key=lambda plex: (plex.size, plex.vertices))
    return results


def best_community_for(
    graph: Graph,
    query_vertex: int,
    k: int,
    q: int,
    config: Optional[EnumerationConfig] = None,
) -> Optional[KPlex]:
    """Return the largest (ties: densest-first by vertex order) k-plex containing the query.

    Convenience wrapper for the common "give me *the* community of this
    vertex" use case; ``None`` when no k-plex of size ``q`` contains it.
    """
    results = enumerate_kplexes_containing(graph, [query_vertex], k, q, config)
    if not results:
        return None
    return max(results, key=lambda plex: (plex.size, plex.vertices))
