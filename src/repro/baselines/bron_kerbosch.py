"""Bron–Kerbosch style maximal k-plex enumeration (Algorithm 1 of the paper).

This is the classic backtracking scheme: grow ``P`` one candidate at a time,
keep the exclusive set ``X`` of vertices already considered so that only
maximal sets are reported.  No seed-subgraph decomposition, no pivoting, no
upper bounds — it is the unoptimised reference the paper builds on, and a
secondary oracle for the test-suite on small and medium graphs.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set

from ..core.kplex import KPlex, can_extend, validate_parameters
from ..core.stats import SearchStatistics
from ..graph import Graph
from ..graph.core_decomposition import shrink_to_core


class BronKerboschKPlex:
    """Algorithm 1: Bron–Kerbosch adapted to maximal k-plex enumeration.

    Parameters mirror :class:`repro.core.enumerator.KPlexEnumerator`.  Unlike
    the decomposed algorithm, any ``q >= 1`` is accepted because this variant
    does not rely on the two-hop (diameter) property.
    """

    def __init__(self, graph: Graph, k: int, q: int, use_core_pruning: bool = True) -> None:
        validate_parameters(k, q, enforce_diameter_bound=False)
        self.graph = graph
        self.k = k
        self.q = q
        self.statistics = SearchStatistics()
        if use_core_pruning and q > k:
            self._mined_graph, self._vertex_map = shrink_to_core(graph, q - k)
        else:
            self._mined_graph, self._vertex_map = graph, list(graph.vertices())

    def run(self) -> List[KPlex]:
        """Enumerate all maximal k-plexes with at least ``q`` vertices."""
        results: List[FrozenSet[int]] = []
        mined = self._mined_graph
        if mined.num_vertices >= self.q:
            self._expand(frozenset(), set(mined.vertices()), set(), results)
        translated = [
            KPlex.from_vertices(
                self.graph, [self._vertex_map[v] for v in members], self.k
            )
            for members in results
        ]
        translated.sort(key=lambda plex: (plex.size, plex.vertices))
        self.statistics.outputs = len(translated)
        return translated

    # ------------------------------------------------------------------ #
    # Recursive expansion (Algorithm 1)
    # ------------------------------------------------------------------ #
    def _expand(
        self,
        members: FrozenSet[int],
        candidates: Set[int],
        excluded: Set[int],
        results: List[FrozenSet[int]],
    ) -> None:
        graph = self._mined_graph
        self.statistics.branch_calls += 1
        if not candidates:
            if not excluded and len(members) >= self.q:
                results.append(members)
            return
        # Size pruning: even taking every candidate cannot reach q vertices.
        if len(members) + len(candidates) < self.q:
            return
        remaining = set(candidates)
        shared_excluded = set(excluded)
        for vertex in sorted(candidates):
            if vertex not in remaining:
                continue
            remaining.discard(vertex)
            grown = members | {vertex}
            next_candidates = {
                u for u in remaining if can_extend(graph, grown, u, self.k)
            }
            next_excluded = {
                u for u in shared_excluded if can_extend(graph, grown, u, self.k)
            }
            self._expand(grown, next_candidates, next_excluded, results)
            shared_excluded.add(vertex)


def bron_kerbosch_maximal_kplexes(
    graph: Graph, k: int, q: int, use_core_pruning: bool = True
) -> List[KPlex]:
    """Functional wrapper around :class:`BronKerboschKPlex`."""
    return BronKerboschKPlex(graph, k, q, use_core_pruning=use_core_pruning).run()


def bron_kerbosch_vertex_sets(graph: Graph, k: int, q: int) -> Set[FrozenSet[int]]:
    """Return the Bron–Kerbosch results as a set of frozensets (for tests)."""
    return {plex.as_set() for plex in bron_kerbosch_maximal_kplexes(graph, k, q)}
