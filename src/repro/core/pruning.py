"""Pruning techniques: Corollary 5.2 and the vertex-pair rules (R2).

Two families of pruning are implemented here:

* :func:`prune_seed_subgraph` applies Corollary 5.2 to the vertex set of a
  seed subgraph ``G_i``: a vertex that does not share enough common
  neighbours with the seed can never occur in a k-plex of size ``q`` together
  with the seed and is removed before the dense subgraph is materialised.

* :func:`build_pair_matrix` precomputes the boolean co-occurrence matrix ``T``
  of Theorems 5.13–5.15.  ``T[u][v]`` is ``False`` when ``u`` and ``v`` cannot
  both belong to a k-plex with at least ``q`` vertices in the current seed
  subgraph, based on how many common neighbours they have inside the initial
  candidate set ``C_S``.  The matrix is stored as one bitset row per local
  vertex so that filtering a candidate set is a single ``&``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..graph import Graph
from ..graph.bitset import iter_bits
from ..graph.dense import DenseSubgraph


def corollary_52_keep(
    graph: Graph,
    seed: int,
    vertices: Sequence[int],
    k: int,
    q: int,
    iterate_to_fixpoint: bool = True,
) -> Set[int]:
    """Return the subset of ``vertices`` that survives Corollary 5.2.

    ``vertices`` is the candidate vertex set ``V_i`` of seed ``seed`` (the seed
    itself must be included and is never pruned).  A vertex ``u`` is pruned
    when

    * ``u ∈ N(seed)`` and ``|N(u) ∩ N(seed)| < q - 2k`` inside ``G_i``, or
    * ``u ∈ N²(seed)`` and ``|N(u) ∩ N(seed)| < q - 2k + 2`` inside ``G_i``.

    Removing a vertex shrinks the neighbourhoods inside ``G_i``, so the rule
    is re-applied until a fixpoint is reached (pruned vertices can never
    re-qualify, hence the iteration is monotone and terminates).
    """
    kept: Set[int] = set(vertices)
    kept.add(seed)
    neighbor_threshold = q - 2 * k
    two_hop_threshold = q - 2 * k + 2
    changed = True
    while changed:
        changed = False
        seed_neighbors = graph.neighbors(seed) & kept
        removable = []
        for u in kept:
            if u == seed:
                continue
            common = len(graph.neighbors(u) & seed_neighbors)
            threshold = neighbor_threshold if u in seed_neighbors else two_hop_threshold
            if common < threshold:
                removable.append(u)
        if removable:
            kept.difference_update(removable)
            changed = iterate_to_fixpoint
    return kept


# --------------------------------------------------------------------------- #
# Vertex-pair pruning (Theorems 5.13 - 5.15)
# --------------------------------------------------------------------------- #
def _pair_threshold_both_two_hop(k: int, q: int, adjacent: bool) -> int:
    """Theorem 5.13 thresholds: both endpoints in ``N²_{G_i}(v_i)``."""
    if adjacent:
        return q - k - 2 * max(k - 2, 0)
    return q - k - 2 * max(k - 3, 0)


def _pair_threshold_mixed(k: int, q: int, adjacent: bool) -> int:
    """Theorem 5.14 thresholds: one endpoint in ``N²``, the other in ``N(v_i)``.

    The thresholds follow the derivation in the paper's Appendix A.9 (the
    bound actually proven), which is the safe direction for pruning.
    """
    if adjacent:
        return q - 2 * k - max(k - 2, 0)
    return q - k - max(k - 2, 0) - max(k - 2, 1)


def _pair_threshold_both_candidates(k: int, q: int, adjacent: bool) -> int:
    """Theorem 5.15 thresholds: both endpoints in ``C_S = N_{G_i}(v_i)``."""
    if adjacent:
        return q - 3 * k
    return q - k - 2 * max(k - 1, 1)


def build_pair_matrix(
    subgraph: DenseSubgraph,
    seed_local: int,
    candidate_mask: int,
    two_hop_mask: int,
    k: int,
    q: int,
) -> List[int]:
    """Build the co-occurrence bitset rows ``pair_ok`` for a seed subgraph.

    ``pair_ok[u]`` has bit ``v`` set when Theorems 5.13–5.15 do **not** rule
    out ``u`` and ``v`` co-occurring in a k-plex of size at least ``q`` inside
    this seed subgraph.  The seed vertex row allows everything (the seed is in
    every k-plex of the task group by construction).
    """
    size = subgraph.size
    full = subgraph.full_mask
    pair_ok = [full] * size
    adjacency = subgraph.adjacency

    locals_two_hop = list(iter_bits(two_hop_mask))
    locals_candidates = list(iter_bits(candidate_mask))

    def disallow(u: int, v: int) -> None:
        pair_ok[u] &= ~(1 << v)
        pair_ok[v] &= ~(1 << u)

    # Theorem 5.13: both vertices from the two-hop set.
    for index, u in enumerate(locals_two_hop):
        for v in locals_two_hop[index + 1 :]:
            adjacent = (adjacency[u] >> v) & 1 == 1
            common = (adjacency[u] & adjacency[v] & candidate_mask).bit_count()
            if common < _pair_threshold_both_two_hop(k, q, adjacent):
                disallow(u, v)

    # Theorem 5.14: one two-hop vertex with one candidate vertex.
    for u in locals_two_hop:
        for v in locals_candidates:
            adjacent = (adjacency[u] >> v) & 1 == 1
            reduced_candidates = candidate_mask & ~(1 << v)
            common = (adjacency[u] & adjacency[v] & reduced_candidates).bit_count()
            if common < _pair_threshold_mixed(k, q, adjacent):
                disallow(u, v)

    # Theorem 5.15: both vertices from the candidate set.
    for index, u in enumerate(locals_candidates):
        for v in locals_candidates[index + 1 :]:
            adjacent = (adjacency[u] >> v) & 1 == 1
            reduced_candidates = candidate_mask & ~(1 << u) & ~(1 << v)
            common = (adjacency[u] & adjacency[v] & reduced_candidates).bit_count()
            if common < _pair_threshold_both_candidates(k, q, adjacent):
                disallow(u, v)

    # The seed may co-occur with every surviving vertex of its own subgraph.
    pair_ok[seed_local] = full
    for u in range(size):
        pair_ok[u] |= 1 << seed_local
    return pair_ok


def pairs_allowed(pair_ok: Optional[Sequence[int]], u: int, mask: int) -> int:
    """Filter ``mask`` down to the vertices allowed to co-occur with ``u``.

    When no pair matrix is available (R2 disabled) the mask is returned
    unchanged.
    """
    if pair_ok is None:
        return mask
    return mask & pair_ok[u]
