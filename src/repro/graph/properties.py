"""Structural graph properties used by the algorithms and the experiments.

These helpers cover the quantities the paper reports for each dataset
(Table 2: ``n``, ``m``, maximum degree, degeneracy) and the structural facts
exploited by the search (diameter of a vertex subset, connectivity,
common-neighbour counts).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .core_decomposition import degeneracy
from .graph import Graph


@dataclass(frozen=True)
class GraphSummary:
    """Summary statistics of a graph in the shape of a Table 2 row."""

    name: str
    num_vertices: int
    num_edges: int
    max_degree: int
    degeneracy: int

    def as_row(self) -> Dict[str, object]:
        """Return the summary as a plain dictionary (for table rendering)."""
        return {
            "network": self.name,
            "n": self.num_vertices,
            "m": self.num_edges,
            "max_degree": self.max_degree,
            "degeneracy": self.degeneracy,
        }


def summarize(graph: Graph, name: str = "graph") -> GraphSummary:
    """Compute the Table 2 style summary of ``graph``."""
    return GraphSummary(
        name=name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree(),
        degeneracy=degeneracy(graph),
    )


def density(graph: Graph) -> float:
    """Return the edge density ``2m / (n (n - 1))`` (0 for tiny graphs)."""
    n = graph.num_vertices
    if n < 2:
        return 0.0
    return 2.0 * graph.num_edges / (n * (n - 1))


def subset_density(graph: Graph, vertices: Iterable[int]) -> float:
    """Return the edge density of the subgraph induced by ``vertices``."""
    members = set(vertices)
    if len(members) < 2:
        return 0.0
    edges = 0
    for vertex in members:
        edges += sum(1 for w in graph.neighbors(vertex) if w in members)
    edges //= 2
    return 2.0 * edges / (len(members) * (len(members) - 1))


def breadth_first_distances(
    graph: Graph, source: int, allowed: Optional[Set[int]] = None
) -> Dict[int, int]:
    """Return BFS distances from ``source`` restricted to ``allowed`` vertices."""
    if allowed is not None and source not in allowed:
        return {}
    distances = {source: 0}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for neighbour in graph.neighbors(vertex):
            if allowed is not None and neighbour not in allowed:
                continue
            if neighbour not in distances:
                distances[neighbour] = distances[vertex] + 1
                queue.append(neighbour)
    return distances


def is_connected_subset(graph: Graph, vertices: Iterable[int]) -> bool:
    """Return ``True`` if the subgraph induced by ``vertices`` is connected."""
    members = set(vertices)
    if not members:
        return True
    source = next(iter(members))
    reached = breadth_first_distances(graph, source, allowed=members)
    return len(reached) == len(members)


def subset_diameter(graph: Graph, vertices: Iterable[int]) -> int:
    """Return the diameter of the subgraph induced by ``vertices``.

    Returns ``0`` for subsets with at most one vertex and raises
    :class:`ValueError` when the induced subgraph is disconnected, mirroring
    the convention used when validating Theorem 3.3.
    """
    members = set(vertices)
    if len(members) <= 1:
        return 0
    diameter = 0
    for vertex in members:
        distances = breadth_first_distances(graph, vertex, allowed=members)
        if len(distances) != len(members):
            raise ValueError("induced subgraph is disconnected; diameter undefined")
        diameter = max(diameter, max(distances.values()))
    return diameter


def connected_components(graph: Graph) -> List[Set[int]]:
    """Return the connected components of ``graph`` as vertex sets."""
    seen: Set[int] = set()
    components: List[Set[int]] = []
    for vertex in graph.vertices():
        if vertex in seen:
            continue
        component = set(breadth_first_distances(graph, vertex))
        seen.update(component)
        components.append(component)
    return components


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Return a mapping ``degree -> number of vertices with that degree``."""
    histogram: Dict[int, int] = {}
    for vertex in graph.vertices():
        degree = graph.degree(vertex)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def average_degree(graph: Graph) -> float:
    """Return the mean vertex degree."""
    if graph.num_vertices == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.num_vertices


def count_common_neighbors(graph: Graph, u: int, v: int, within: Optional[Set[int]] = None) -> int:
    """Return ``|N(u) ∩ N(v)|``, optionally restricted to ``within``."""
    common = graph.neighbors(u) & graph.neighbors(v)
    if within is not None:
        common = common & within
    return len(common)


def non_neighbors_within(graph: Graph, vertex: int, members: Sequence[int]) -> List[int]:
    """Return the members of ``members`` not adjacent to ``vertex`` (itself included).

    This matches the paper's ``\\bar d_P(v)`` convention where a vertex counts
    as its own non-neighbour when it belongs to the set.
    """
    neighbours = graph.neighbors(vertex)
    return [w for w in members if w == vertex or w not in neighbours]
