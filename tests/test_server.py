"""Tests for the HTTP serving front-end, persistence and warm-start replay."""

import json
import threading
import time
import urllib.request

import pytest

from repro.api import KPlexEngine, EnumerationRequest
from repro.errors import (
    CatalogError,
    ParameterError,
    RemoteServiceError,
    ServiceClosedError,
    SnapshotError,
)
from repro.graph import Graph, generators
from repro.service import KPlexService, ServiceConfig
from repro.server import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    ServiceClient,
    load_snapshot,
    save_snapshot,
    snapshot_service,
    start_server,
    warm_start,
)

EDGES = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]


def make_service(**config_kwargs) -> KPlexService:
    return KPlexService(config=ServiceConfig(max_workers=2, **config_kwargs))


@pytest.fixture()
def served():
    """A booted server + ready client over a fresh two-worker service."""
    service = make_service()
    server = start_server(service, port=0)
    client = ServiceClient(server.url)
    client.wait_ready()
    try:
        yield service, server, client
    finally:
        server.drain()


# --------------------------------------------------------------------------- #
# Happy paths over the wire
# --------------------------------------------------------------------------- #
def test_http_register_solve_and_metrics(served):
    _service, _server, client = served
    entry = client.register("toy", edges=EDGES)
    assert entry["name"] == "toy" and entry["vertices"] == 4

    listed = client.graphs()
    assert [row["name"] for row in listed] == ["toy"]

    first = client.solve("toy", k=2, q=3)
    assert first["count"] == 1 and first["termination"] == "completed"
    assert sorted(first["kplexes"][0]) == [0, 1, 2, 3]

    second = client.solve("toy", k=2, q=3, include_results=False)
    assert second["count"] == 1 and "kplexes" not in second

    metrics = client.metrics()
    assert metrics["cache_hits"] == 1 and metrics["cache_misses"] == 1
    assert metrics["catalog"]["graphs"] == 1


def test_http_health_and_prometheus_text(served):
    _service, _server, client = served
    assert client.health()["status"] == "ok"
    client.register("toy", edges=EDGES)
    client.solve("toy", k=2, q=3)

    text = client.metrics(fmt="prometheus")
    assert "# TYPE kplex_hit_rate gauge" in text
    assert "kplex_cache_misses 1" in text
    assert "kplex_in_flight 0" in text
    assert "kplex_rejected 0" in text
    assert "kplex_result_cache_evictions 0" in text
    assert "kplex_latency_p50_seconds" in text
    assert "kplex_latency_p95_seconds" in text


def test_http_solve_with_query_and_solver_options(served):
    _service, _server, client = served
    client.register("toy", edges=EDGES)
    anchored = client.solve("toy", k=2, q=3, query=[3], solver="listplex")
    assert anchored["count"] == 1
    assert all(3 in plex for plex in anchored["kplexes"])


def test_http_register_by_dataset_with_prewarm(served):
    service, _server, client = served
    entry = client.register("jazz", dataset="jazz", prewarm=[(2, 8)])
    assert entry["prewarmed_levels"] == [6]
    assert service.catalog.get("jazz").num_vertices > 0


# --------------------------------------------------------------------------- #
# Malformed requests: structured 4xx bodies
# --------------------------------------------------------------------------- #
def _raw_status(url, route, payload: bytes):
    request = urllib.request.Request(
        f"{url}{route}", data=payload, method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def test_http_malformed_requests_yield_structured_4xx(served):
    _service, server, client = served
    client.register("toy", edges=EDGES)

    status, body = _raw_status(server.url, "/v1/solve", b"this is not json")
    assert status == 400 and body["error"]["type"] == "BadRequest"

    status, body = _raw_status(server.url, "/v1/solve", b'["a", "list"]')
    assert status == 400 and "object" in body["error"]["message"]

    status, body = _raw_status(server.url, "/v1/solve", b'{"graph": "toy", "k": 2}')
    assert status == 400 and "'q'" in body["error"]["message"]

    status, body = _raw_status(
        server.url, "/v1/solve", b'{"graph": "toy", "k": "two", "q": 3}'
    )
    assert status == 400 and "'k'" in body["error"]["message"]

    status, body = _raw_status(
        server.url, "/v1/solve", b'{"graph": "toy", "k": 2, "q": 3, "bogus": 1}'
    )
    assert status == 400 and "bogus" in body["error"]["message"]

    with pytest.raises(ParameterError):
        client.solve("toy", k=0, q=3)
    with pytest.raises(CatalogError):
        client.solve("missing", k=2, q=3)
    with pytest.raises(CatalogError):
        client.register("toy", edges=EDGES)  # duplicate without replace
    with pytest.raises(RemoteServiceError) as excinfo:
        client.register("half")  # no source at all
    assert excinfo.value.status == 400

    # unknown route and wrong method
    status, body = _raw_status(server.url, "/v1/unknown", b"{}")
    assert status == 404
    status, body = _raw_status(server.url, "/healthz", b"{}")
    assert status == 405

    # the service must still be fully usable after every bad request
    assert client.solve("toy", k=2, q=3)["count"] == 1


def test_http_duplicate_register_conflict_status(served):
    _service, server, client = served
    client.register("toy", edges=EDGES)
    status, body = _raw_status(
        server.url,
        "/v1/graphs",
        json.dumps({"name": "toy", "edges": [list(e) for e in EDGES]}).encode(),
    )
    assert status == 409
    client.register("toy", edges=EDGES, replace=True)  # explicit replace works


def test_http_unknown_graph_is_404(served):
    _service, server, client = served
    status, body = _raw_status(
        server.url, "/v1/solve", b'{"graph": "ghost", "k": 2, "q": 3}'
    )
    assert status == 404 and body["error"]["type"] == "CatalogError"


# --------------------------------------------------------------------------- #
# Concurrency: HTTP clients get bit-identical results to a serial run
# --------------------------------------------------------------------------- #
def test_concurrent_http_clients_bit_identical_to_serial():
    graph = generators.relaxed_caveman(
        num_communities=5, community_size=6, rewire_probability=0.2, seed=11
    )
    engine = KPlexEngine()
    cells = [(2, 5), (2, 6), (3, 6)]
    serial = {
        cell: [
            list(plex.labels)
            for plex in engine.solve(
                EnumerationRequest(graph=graph, k=cell[0], q=cell[1])
            ).kplexes
        ]
        for cell in cells
    }

    service = KPlexService(config=ServiceConfig(max_workers=4))
    server = start_server(service, port=0)
    try:
        boot = ServiceClient(server.url)
        boot.wait_ready()
        # vertices pins the label->id interning order to the original graph's,
        # so the HTTP results are bit-identical (not merely set-equal)
        boot.register("caveman", edges=list(graph.edges()), vertices=graph.labels())

        results = {}
        errors = []
        lock = threading.Lock()

        def hammer(worker: int) -> None:
            client = ServiceClient(server.url)
            try:
                for round_index in range(3):
                    cell = cells[(worker + round_index) % len(cells)]
                    response = client.solve("caveman", k=cell[0], q=cell[1])
                    with lock:
                        results.setdefault(cell, []).append(response["kplexes"])
            except Exception as exc:  # noqa: BLE001 - re-raised below
                with lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        for cell, observed in results.items():
            for kplexes in observed:
                assert kplexes == serial[cell], f"divergence at {cell}"
    finally:
        server.drain()


# --------------------------------------------------------------------------- #
# close(drain=...) semantics
# --------------------------------------------------------------------------- #
class _SlowEngine:
    """Engine wrapper that makes every solve take a visible amount of time."""

    def __init__(self, delay: float = 0.15) -> None:
        self._engine = KPlexEngine()
        self.delay = delay

    def solve(self, request):
        time.sleep(self.delay)
        return self._engine.solve(request)


def test_close_drain_completes_queued_futures():
    service = KPlexService(
        config=ServiceConfig(max_workers=1, max_queue_depth=8),
        engine=_SlowEngine(),
    )
    service.catalog.register("toy", EDGES)
    futures = [
        service.submit(service.request("toy", k=2, q=3, max_results=i + 1))
        for i in range(4)
    ]
    service.close(drain=True)
    # every queued request finished normally: no cancellations, no errors
    assert [future.result(timeout=10).count for future in futures] == [1, 1, 1, 1]
    with pytest.raises(ServiceClosedError):
        service.submit(service.request("toy", k=2, q=3))
    assert service.closed
    service.close()  # idempotent


def test_close_without_drain_cancels_queued_work():
    service = KPlexService(
        config=ServiceConfig(max_workers=1, max_queue_depth=8),
        engine=_SlowEngine(delay=0.3),
    )
    service.catalog.register("toy", EDGES)
    futures = [
        service.submit(service.request("toy", k=2, q=3, max_results=i + 1))
        for i in range(4)
    ]
    service.close(drain=False)
    outcomes = {"done": 0, "cancelled": 0}
    for future in futures:
        if future.cancelled():
            outcomes["cancelled"] += 1
        else:
            future.result(timeout=10)
            outcomes["done"] += 1
    assert outcomes["done"] >= 1  # the running request always finishes
    assert outcomes["cancelled"] >= 1  # queued ones are abandoned on purpose
    # in-flight gauge settles to zero even for the cancelled futures
    assert service.metrics()["in_flight"] == 0


def test_http_draining_server_answers_503(served):
    service, server, client = served
    client.register("toy", edges=EDGES)
    service.close(drain=True)
    assert client.health()["status"] == "draining"
    with pytest.raises(ServiceClosedError):
        client.solve("toy", k=2, q=3)


# --------------------------------------------------------------------------- #
# Snapshot persistence and warm-start replay
# --------------------------------------------------------------------------- #
def test_snapshot_document_shape(tmp_path):
    service = make_service()
    service.catalog.register("toy", EDGES)
    service.solve("toy", k=2, q=3)
    service.solve("toy", k=2, q=3, solver="bron-kerbosch")
    path = tmp_path / "snap.json"
    document = save_snapshot(service, path)
    service.close()

    loaded = load_snapshot(path)
    assert loaded["format"] == SNAPSHOT_FORMAT
    assert loaded["version"] == SNAPSHOT_VERSION
    assert loaded == json.loads(path.read_text())
    assert [spec["name"] for spec in loaded["graphs"]] == ["toy"]
    assert loaded["graphs"][0]["edges"]  # inline edges for object-registered graphs
    assert len(loaded["hot_requests"]) == 2
    # hot requests are replay specs, never payloads
    assert all("kplexes" not in spec for spec in loaded["hot_requests"])
    assert len(loaded["seed_specs"]) == 1
    assert document["hot_requests"][0]["graph"] == "toy"


def test_snapshot_roundtrip_restart_warms_cache(tmp_path):
    path = tmp_path / "snap.json"
    service = make_service()
    service.catalog.register("toy", EDGES)
    baseline = service.solve("toy", k=2, q=3)
    save_snapshot(service, path)
    service.close()

    restarted = make_service()
    report = warm_start(restarted, path)
    assert report.graphs_registered == 1
    assert report.replayed >= 1 and report.failed == 0

    before = restarted.metrics()["cache_hits"]
    response = restarted.solve("toy", k=2, q=3)
    after = restarted.metrics()
    assert after["cache_hits"] == before + 1  # warm hit, not a recompute
    assert after["hit_rate"] > 0
    assert response.vertex_sets() == baseline.vertex_sets()
    restarted.close()


def test_snapshot_preserves_query_and_variant_requests(tmp_path):
    path = tmp_path / "snap.json"
    service = make_service()
    service.catalog.register("toy", EDGES)
    service.solve("toy", k=2, q=3, variant="basic")
    service.solve("toy", k=2, q=3, query_vertices=(3,))
    save_snapshot(service, path)
    service.close()

    restarted = make_service()
    report = warm_start(restarted, path)
    assert report.failed == 0 and report.replayed >= 2
    before = restarted.metrics()["cache_hits"]
    restarted.solve("toy", k=2, q=3, variant="basic")
    restarted.solve("toy", k=2, q=3, query_vertices=(3,))
    assert restarted.metrics()["cache_hits"] == before + 2
    restarted.close()


def test_stale_snapshot_rejected_after_bump_epoch(tmp_path):
    path = tmp_path / "snap.json"
    service = make_service()
    service.catalog.register("toy", EDGES)
    service.solve("toy", k=2, q=3)
    save_snapshot(service, path)

    service.catalog.get("toy").bump_epoch()
    if service.result_cache is not None:
        service.result_cache.clear()
    report = warm_start(service, path)
    assert report.replayed == 0
    assert report.graphs_stale == 1
    assert report.skipped_stale >= 1

    # nothing warmed: the next query recomputes instead of hitting
    hits_before = service.metrics()["cache_hits"]
    service.solve("toy", k=2, q=3)
    assert service.metrics()["cache_hits"] == hits_before
    service.close()


def test_snapshot_taken_after_mutation_does_not_warm_fresh_restart(tmp_path):
    path = tmp_path / "snap.json"
    service = make_service()
    service.catalog.register("toy", EDGES)
    service.catalog.get("toy").bump_epoch()  # mutated before the snapshot
    service.solve("toy", k=2, q=3)
    save_snapshot(service, path)
    service.close()

    # the re-materialised graph starts at epoch 0 and cannot vouch for the
    # post-mutation state the snapshot saw; replay must refuse to warm it
    restarted = make_service()
    report = warm_start(restarted, path)
    assert report.replayed == 0 and report.graphs_stale == 1
    restarted.close()


def test_warm_start_errors_are_collected_not_raised(tmp_path):
    path = tmp_path / "snap.json"
    service = make_service()
    service.catalog.register("toy", EDGES)
    service.solve("toy", k=2, q=3)
    document = save_snapshot(service, path)
    service.close()

    document["hot_requests"][0]["solver"] = "no-such-solver"
    restarted = make_service()
    report = warm_start(restarted, document)
    assert report.failed >= 1 and report.errors
    restarted.close()


def test_load_snapshot_rejects_garbage(tmp_path):
    missing = tmp_path / "missing.json"
    with pytest.raises(SnapshotError):
        load_snapshot(missing)

    bad = tmp_path / "bad.json"
    bad.write_text("not json at all")
    with pytest.raises(SnapshotError):
        load_snapshot(bad)

    wrong_format = tmp_path / "wrong.json"
    wrong_format.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(SnapshotError):
        load_snapshot(wrong_format)

    wrong_version = tmp_path / "version.json"
    wrong_version.write_text(
        json.dumps(
            {
                "format": SNAPSHOT_FORMAT,
                "version": SNAPSHOT_VERSION + 1,
                "graphs": [],
                "hot_requests": [],
                "seed_specs": [],
            }
        )
    )
    with pytest.raises(SnapshotError):
        load_snapshot(wrong_version)


def test_snapshot_preserves_file_registration_format(tmp_path):
    from repro.graph.io import write_edge_list

    graph_path = tmp_path / "ring.graph"  # extension gives auto-detect no hint
    write_edge_list(Graph.from_edges(EDGES), graph_path)
    service = make_service()
    service.catalog.register("ring", str(graph_path), fmt="edgelist")
    service.solve("ring", k=2, q=3)
    document = snapshot_service(service)
    assert document["graphs"][0]["path"] == str(graph_path)
    assert document["graphs"][0]["fmt"] == "edgelist"
    service.close()

    restarted = make_service()
    report = warm_start(restarted, document)
    # the recorded fmt is reused, so the re-registered graph parses identically
    assert report.graphs_registered == 1 and report.failed == 0
    assert restarted.catalog.get("ring").num_edges == len(EDGES)
    assert restarted.catalog.entry("ring").fmt == "edgelist"
    restarted.close()


def test_snapshot_skips_unrestorable_graphs(tmp_path):
    service = make_service()
    # tuple labels are hashable (valid graphs) but not JSON-representable
    weird = Graph.from_edges([((0, 0), (1, 1)), ((1, 1), (2, 2)), ((0, 0), (2, 2))])
    service.catalog.register("weird", weird)
    service.catalog.register("toy", EDGES)
    service.solve("toy", k=2, q=3)
    service.solve("weird", k=2, q=3)
    document = snapshot_service(service)
    assert [spec["name"] for spec in document["graphs"]] == ["toy"]
    assert all(spec["graph"] == "toy" for spec in document["hot_requests"])
    service.close()


def test_http_snapshot_endpoint_and_server_warm_start(tmp_path):
    path = str(tmp_path / "snap.json")
    service = make_service()
    server = start_server(service, port=0, snapshot_path=path)
    client = ServiceClient(server.url)
    client.wait_ready()
    client.register("toy", edges=EDGES)
    client.solve("toy", k=2, q=3)
    summary = client.snapshot()
    assert summary["path"] == path and summary["hot_requests"] == 1
    server.drain()

    restarted_service = make_service()
    restarted = start_server(restarted_service, port=0, snapshot_path=path)
    try:
        report = restarted.warm_start()
        assert report is not None and report.replayed >= 1
        client2 = ServiceClient(restarted.url)
        client2.wait_ready()
        client2.solve("toy", k=2, q=3)
        assert client2.metrics()["cache_hits"] >= 1
    finally:
        restarted.drain()


def test_http_snapshot_endpoint_without_path_is_400(served):
    _service, _server, client = served
    with pytest.raises(RemoteServiceError) as excinfo:
        client.snapshot()
    assert excinfo.value.status == 400


def test_drain_writes_final_snapshot(tmp_path):
    path = str(tmp_path / "snap.json")
    service = make_service()
    server = start_server(service, port=0, snapshot_path=path)
    client = ServiceClient(server.url)
    client.wait_ready()
    client.register("toy", edges=EDGES)
    client.solve("toy", k=2, q=3)
    server.drain()
    document = load_snapshot(path)
    assert len(document["hot_requests"]) == 1


def test_concurrent_snapshots_and_drain_never_tear_the_file(tmp_path):
    """Hammer write_snapshot from many threads while a drain runs.

    Every writer stages into its own temp file and publication is
    serialised, so the published snapshot must always be one writer's
    complete document, the drain's final snapshot must be the last write,
    and no temp files may be left behind.
    """
    path = tmp_path / "snap.json"
    service = make_service()
    server = start_server(
        service, port=0, snapshot_path=str(path), snapshot_interval=0.005
    )
    client = ServiceClient(server.url)
    client.wait_ready()
    client.register("toy", edges=EDGES)
    client.solve("toy", k=2, q=3)

    stop = threading.Event()
    failures = []

    def hammer():
        while not stop.is_set():
            try:
                server.write_snapshot()
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                failures.append(exc)

    def hammer_endpoint():
        # The POST /v1/snapshot handler must take the same writer lock;
        # connection errors once the drain closes the listener are expected.
        while not stop.is_set():
            try:
                client.snapshot()
            except Exception as exc:  # noqa: BLE001 - recorded unless draining
                if stop.is_set() or server.draining:
                    return
                failures.append(exc)
                return

    threads = [threading.Thread(target=hammer) for _ in range(3)]
    threads.append(threading.Thread(target=hammer_endpoint))
    for thread in threads:
        thread.start()
    time.sleep(0.05)  # let periodic + hammer writers overlap
    server.drain()
    stop.set()
    for thread in threads:
        thread.join()

    assert not failures
    # The periodic thread retired before the final snapshot was written.
    assert server._snapshot_thread is not None
    assert not server._snapshot_thread.is_alive()
    document = json.loads(path.read_text(encoding="utf-8"))
    assert document["format"] == SNAPSHOT_FORMAT
    assert document["version"] == SNAPSHOT_VERSION
    assert len(document["hot_requests"]) == 1
    leftovers = [p for p in path.parent.iterdir() if p.name != path.name]
    assert leftovers == [], f"temp files left behind: {leftovers}"
