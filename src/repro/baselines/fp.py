"""FP-style baseline.

FP (Dai et al., CIKM 2022) also mines seed subgraphs in degeneracy order but,
unlike ListPlex and the paper's algorithm, it does **not** split a seed's
work into sub-tasks over the seed's two-hop non-neighbours: the whole two-hop
neighbourhood forms a single candidate set.  Its branch pruning relies on an
upper bound whose computation requires sorting the candidate set in every
recursion (Lemma 5 of the FP paper), which the paper identifies as its main
per-node overhead.

The re-implementation below reuses the shared branch-and-bound engine with

* a single sub-task per seed whose candidate set is the full two-hop
  neighbourhood (no ``S`` enumeration),
* the sorting-based upper bound (``upper_bound_method="fp"``),
* no vertex-pair pruning and no Theorem 5.7 sub-task pruning.
"""

from __future__ import annotations

import time
from typing import FrozenSet, Iterator, List, Optional, Sequence, Set

from ..core.branch import BranchSearcher
from ..core.config import UPPER_BOUND_FP, EnumerationConfig
from ..core.enumerator import EnumerationResult
from ..core.kplex import KPlex, validate_parameters
from ..core.pruning import corollary_52_keep
from ..core.seeds import SeedContext, SubTask
from ..core.stats import SearchStatistics
from ..graph import Graph
from ..graph.core_decomposition import core_decomposition, shrink_to_core
from ..graph.dense import DenseSubgraph, external_adjacency_mask


def fp_config() -> EnumerationConfig:
    """Configuration matching the techniques used by the FP baseline."""
    return EnumerationConfig(
        use_upper_bound=True,
        upper_bound_method=UPPER_BOUND_FP,
        use_seed_upper_bound=False,
        use_pair_pruning=False,
        use_seed_pruning=True,
    )


def build_fp_seed_context(
    graph: Graph,
    order_position: Sequence[int],
    seed_vertex: int,
    k: int,
    q: int,
    use_seed_pruning: bool = True,
    stats: Optional[SearchStatistics] = None,
) -> Optional[SeedContext]:
    """Build an FP-style seed context: one candidate set, no sub-task split."""
    seed_position = order_position[seed_vertex]
    neighbors = graph.neighbors(seed_vertex)
    two_hops = graph.two_hop_neighbors(seed_vertex)
    later = [
        vertex for vertex in neighbors | two_hops if order_position[vertex] > seed_position
    ]
    candidate_vertices = set(later)
    candidate_vertices.add(seed_vertex)
    if len(candidate_vertices) < q:
        if stats is not None:
            stats.seeds_pruned_empty += 1
        return None
    if use_seed_pruning:
        kept = corollary_52_keep(graph, seed_vertex, candidate_vertices, k, q)
        if stats is not None:
            stats.vertices_pruned_by_corollary += len(candidate_vertices) - len(kept)
    else:
        kept = set(candidate_vertices)
    if len(kept) < q:
        if stats is not None:
            stats.seeds_pruned_empty += 1
        return None

    local_vertices = [seed_vertex] + sorted(kept - {seed_vertex})
    subgraph = DenseSubgraph(graph, local_vertices)
    candidate_mask = subgraph.full_mask & ~1  # everyone except the seed (index 0)
    external_vertices = sorted(
        vertex for vertex in neighbors | two_hops if order_position[vertex] < seed_position
    )
    external_adjacency = [
        external_adjacency_mask(subgraph, vertex) for vertex in external_vertices
    ]
    degrees = [subgraph.degree(v) for v in range(subgraph.size)]
    if stats is not None:
        stats.record_seed(seed_vertex, subgraph.size)
    return SeedContext(
        seed_vertex=seed_vertex,
        subgraph=subgraph,
        seed_local=0,
        candidate_mask=candidate_mask,
        two_hop_mask=0,
        external_vertices=external_vertices,
        external_adjacency=external_adjacency,
        degrees=degrees,
        pair_ok=None,
    )


class FPLike:
    """Baseline enumerator mirroring FP's search strategy."""

    def __init__(self, graph: Graph, k: int, q: int) -> None:
        validate_parameters(k, q)
        self.graph = graph
        self.k = k
        self.q = q
        self.config = fp_config()
        self.statistics = SearchStatistics()
        # Preprocessing (core shrinking + degeneracy ordering) is timed here
        # so the preprocess/search split is comparable with the 'ours' path.
        started = time.perf_counter()
        self._core_graph, self._core_map = shrink_to_core(graph, q - k)
        self._decomposition = None
        if self._core_graph.num_vertices >= q:
            self._decomposition = core_decomposition(self._core_graph)
        preprocess = time.perf_counter() - started
        self.statistics.preprocess_seconds += preprocess
        self.statistics.elapsed_seconds += preprocess

    def iter_results(self) -> Iterator[KPlex]:
        """Lazily yield maximal k-plexes, one seed's task group at a time."""
        started = time.perf_counter()
        try:
            yield from self._iter_results_inner()
        finally:
            # Abandoned generators (cancellation, budgets) still record time.
            duration = time.perf_counter() - started
            self.statistics.search_seconds += duration
            self.statistics.elapsed_seconds += duration

    def _iter_results_inner(self) -> Iterator[KPlex]:
        core = self._core_graph
        if self._decomposition is not None:
            decomposition = self._decomposition
            position = decomposition.position()
            for seed_vertex in decomposition.order:
                context = build_fp_seed_context(
                    core, position, seed_vertex, self.k, self.q, stats=self.statistics
                )
                if context is None:
                    continue
                self.statistics.subtasks += 1
                found: List[KPlex] = []
                searcher = BranchSearcher(
                    context,
                    self.k,
                    self.q,
                    self.config,
                    self.statistics,
                    on_result=lambda mask, ctx=context, sink=found: sink.append(
                        self._translate(ctx, mask)
                    ),
                )
                searcher.run_subtask(
                    SubTask(
                        p_mask=1,
                        c_mask=context.candidate_mask,
                        x_mask=0,
                        x_external_mask=(1 << len(context.external_vertices)) - 1,
                    )
                )
                yield from found

    def run(self) -> EnumerationResult:
        """Enumerate all maximal k-plexes with at least ``q`` vertices."""
        results = list(self.iter_results())
        results.sort(key=lambda plex: (plex.size, plex.vertices))
        return EnumerationResult(
            kplexes=results,
            statistics=self.statistics,
            k=self.k,
            q=self.q,
            config=self.config,
        )

    def _translate(self, context: SeedContext, mask: int) -> KPlex:
        core_vertices = context.subgraph.parents_of_mask(mask)
        original = [self._core_map[v] for v in core_vertices]
        return KPlex.from_vertices(self.graph, original, self.k)


def fp_maximal_kplexes(graph: Graph, k: int, q: int) -> List[KPlex]:
    """Functional wrapper returning the FP-style baseline results."""
    return FPLike(graph, k, q).run().kplexes


def fp_vertex_sets(graph: Graph, k: int, q: int) -> Set[FrozenSet[int]]:
    """Return the baseline results as a set of frozensets (for tests)."""
    return {plex.as_set() for plex in fp_maximal_kplexes(graph, k, q)}
