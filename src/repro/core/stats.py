"""Search statistics collected during enumeration.

The counters mirror the quantities the paper uses to explain its speedups:
how many seed subgraphs and sub-tasks were generated, how many branch nodes
were explored, and how often each pruning technique fired.  They are also the
cost model consumed by the simulated parallel scheduler
(:mod:`repro.parallel.simulator`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict

#: Upper bound on entries kept in ``per_seed_branch_calls``.  Long-lived
#: servers accumulate stats objects (result caches hold them per response),
#: so per-seed tracking keeps only the heaviest seeds once a run exceeds
#: this many: exactly the ones worth looking at when diagnosing skew.
PER_SEED_TOP_N = 64

#: Pruning is amortised: the dict may transiently grow to this many entries
#: before being cut back to :data:`PER_SEED_TOP_N`.
_PER_SEED_PRUNE_AT = 4 * PER_SEED_TOP_N


@dataclass
class SearchStatistics:
    """Mutable counters filled in by the enumerator."""

    seeds: int = 0
    seed_subgraph_vertices: int = 0
    seeds_pruned_empty: int = 0
    subtasks: int = 0
    subtasks_pruned_by_seed_bound: int = 0
    branch_calls: int = 0
    outputs: int = 0
    branches_pruned_by_upper_bound: int = 0
    candidates_pruned_by_pairs: int = 0
    vertices_pruned_by_corollary: int = 0
    maximality_rejections: int = 0
    elapsed_seconds: float = 0.0
    # Split of elapsed_seconds: graph-level preprocessing (core shrinking,
    # degeneracy ordering, CSR construction — near zero on a prepared-graph
    # cache hit) vs the search proper (seed subgraphs + branch and bound).
    preprocess_seconds: float = 0.0
    search_seconds: float = 0.0
    # Fault-tolerance events observed during a parallel run: worker pools
    # rebuilt after a crash, seed tasks resubmitted, and whether the run
    # finished on the in-process serial fallback (degradation ladder).
    pool_recoveries: int = 0
    task_retries: int = 0
    serial_fallbacks: int = 0
    # Bounded to the PER_SEED_TOP_N heaviest seeds (see _prune_per_seed);
    # per_seed_dropped counts entries discarded by that cap.
    per_seed_branch_calls: Dict[int, int] = field(default_factory=dict)
    per_seed_dropped: int = 0

    def record_seed(self, seed_vertex: int, subgraph_size: int) -> None:
        """Record that a seed subgraph with ``subgraph_size`` vertices was built."""
        self.seeds += 1
        self.seed_subgraph_vertices += subgraph_size
        self.per_seed_branch_calls.setdefault(seed_vertex, 0)
        self._prune_per_seed()

    def record_branch(self, seed_vertex: int) -> None:
        """Record one invocation of the branch-and-bound body for ``seed_vertex``."""
        self.branch_calls += 1
        if seed_vertex in self.per_seed_branch_calls:
            self.per_seed_branch_calls[seed_vertex] += 1
        else:
            self.per_seed_branch_calls[seed_vertex] = 1
            self._prune_per_seed()

    def _prune_per_seed(self) -> None:
        if len(self.per_seed_branch_calls) < _PER_SEED_PRUNE_AT:
            return
        kept = heapq.nlargest(
            PER_SEED_TOP_N,
            self.per_seed_branch_calls.items(),
            key=lambda item: (item[1], item[0]),
        )
        self.per_seed_dropped += len(self.per_seed_branch_calls) - len(kept)
        self.per_seed_branch_calls = dict(kept)

    def top_seed_branch_calls(self, limit: int = PER_SEED_TOP_N) -> Dict[int, int]:
        """The ``limit`` seeds with the most branch calls (descending)."""
        ranked = heapq.nlargest(
            max(0, limit),
            self.per_seed_branch_calls.items(),
            key=lambda item: (item[1], item[0]),
        )
        return dict(ranked)

    def merge(self, other: "SearchStatistics") -> "SearchStatistics":
        """Accumulate ``other`` into this object (used by the parallel executor)."""
        self.seeds += other.seeds
        self.seed_subgraph_vertices += other.seed_subgraph_vertices
        self.seeds_pruned_empty += other.seeds_pruned_empty
        self.subtasks += other.subtasks
        self.subtasks_pruned_by_seed_bound += other.subtasks_pruned_by_seed_bound
        self.branch_calls += other.branch_calls
        self.outputs += other.outputs
        self.branches_pruned_by_upper_bound += other.branches_pruned_by_upper_bound
        self.candidates_pruned_by_pairs += other.candidates_pruned_by_pairs
        self.vertices_pruned_by_corollary += other.vertices_pruned_by_corollary
        self.maximality_rejections += other.maximality_rejections
        self.elapsed_seconds = max(self.elapsed_seconds, other.elapsed_seconds)
        self.preprocess_seconds = max(self.preprocess_seconds, other.preprocess_seconds)
        self.search_seconds = max(self.search_seconds, other.search_seconds)
        self.pool_recoveries += other.pool_recoveries
        self.task_retries += other.task_retries
        self.serial_fallbacks += other.serial_fallbacks
        for seed, calls in other.per_seed_branch_calls.items():
            self.per_seed_branch_calls[seed] = self.per_seed_branch_calls.get(seed, 0) + calls
        self.per_seed_dropped += other.per_seed_dropped
        self._prune_per_seed()
        return self

    def as_dict(self) -> Dict[str, float]:
        """Return the scalar counters as a dictionary (for tables and logs)."""
        return {
            "seeds": self.seeds,
            "seed_subgraph_vertices": self.seed_subgraph_vertices,
            "seeds_pruned_empty": self.seeds_pruned_empty,
            "subtasks": self.subtasks,
            "subtasks_pruned_by_seed_bound": self.subtasks_pruned_by_seed_bound,
            "branch_calls": self.branch_calls,
            "outputs": self.outputs,
            "branches_pruned_by_upper_bound": self.branches_pruned_by_upper_bound,
            "candidates_pruned_by_pairs": self.candidates_pruned_by_pairs,
            "vertices_pruned_by_corollary": self.vertices_pruned_by_corollary,
            "maximality_rejections": self.maximality_rejections,
            "elapsed_seconds": self.elapsed_seconds,
            "preprocess_seconds": self.preprocess_seconds,
            "search_seconds": self.search_seconds,
            "pool_recoveries": self.pool_recoveries,
            "task_retries": self.task_retries,
            "serial_fallbacks": self.serial_fallbacks,
        }

    def __str__(self) -> str:
        parts = [f"{key}={value}" for key, value in self.as_dict().items()]
        return "SearchStatistics(" + ", ".join(parts) + ")"
