"""Table 4 — parallel running time with 16 workers (FP, ListPlex, Ours, Ours(τ_best)).

Parallel makespans are predicted by the deterministic stage scheduler fed
with per-task costs measured from real sequential runs (see DESIGN.md §5,
substitution 2): FP parallelises only whole seed groups and keeps subgraph
construction serial, ListPlex parallelises sub-tasks without straggler
elimination, Ours adds the timeout mechanism.
"""

from repro.analysis.reporting import render_table
from repro.experiments import table4_parallel

from _bench_utils import run_once


def test_table4_parallel(benchmark, scale):
    rows = run_once(benchmark, table4_parallel, scale)
    assert rows
    for row in rows:
        # Who-wins shape of the paper's Table 4: Ours beats ListPlex and FP,
        # and the tuned timeout is at least as good as the default.
        assert row["Ours_seconds"] <= row["ListPlex_seconds"] * 1.05
        assert row["Ours_seconds"] <= row["FP_seconds"] * 1.05
        assert row["Ours_best_timeout_seconds"] <= row["Ours_seconds"] * 1.001
    print()
    print(render_table(rows, title="Table 4 — parallel comparison, 16 workers (simulated)"))
