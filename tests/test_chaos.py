"""End-to-end chaos tests: injected faults across the full HTTP stack.

Each test arms the process-wide :class:`~repro.resilience.FaultInjector`
(exactly what ``REPRO_FAULT`` / ``serve-http --fault`` arm in production)
and asserts the failure *semantics* the README promises: worker deaths
recover bit-identically, the circuit breaker sheds load with honest
``Retry-After`` values and closes again, dropped result streams resume
exactly where they left off, and torn snapshots quarantine instead of
crash-looping the boot.
"""

import json
import time
from http.client import HTTPConnection
from urllib.parse import urlsplit

import pytest

from repro.errors import CircuitOpenError, RemoteServiceError, SnapshotError
from repro.graph import generators
from repro.jobs import JobManagerConfig
from repro.resilience import RetryPolicy, fault_injector, resilience_stats
from repro.server import (
    ServiceClient,
    load_snapshot,
    save_snapshot,
    start_server,
    warm_start,
)
from repro.service import KPlexService, ServiceConfig
from repro.service.service import render_prometheus

EDGES = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]
PARALLEL = {"num_workers": 2, "use_processes": True}


@pytest.fixture(autouse=True)
def _clean_globals():
    fault_injector().clear()
    resilience_stats().reset()
    yield
    fault_injector().clear()
    resilience_stats().reset()


def make_service(**config_kwargs) -> KPlexService:
    config_kwargs.setdefault("max_workers", 2)
    config_kwargs.setdefault("result_cache_entries", 0)  # every solve runs
    service = KPlexService(config=ServiceConfig(**config_kwargs))
    service.catalog.register("toy", EDGES)
    service.catalog.register("caveman", generators.relaxed_caveman(5, 5, 0.3, seed=13))
    service.catalog.register("busy", generators.gnm_random(60, 400, seed=5))
    return service


@pytest.fixture()
def served():
    service = make_service()
    server = start_server(service, port=0)
    client = ServiceClient(server.url)
    client.wait_ready()
    try:
        yield service, server, client
    finally:
        server.drain()


def _raw_request(url: str, method: str, path: str, body=None):
    """One request via http.client so response *headers* are inspectable."""
    split = urlsplit(url)
    conn = HTTPConnection(split.hostname, split.port, timeout=30)
    payload = json.dumps(body).encode() if body is not None else None
    headers = {"Content-Type": "application/json"} if payload else {}
    try:
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


# --------------------------------------------------------------------------- #
# Readiness vs liveness
# --------------------------------------------------------------------------- #
def test_readyz_is_ready_and_distinct_from_healthz(served):
    _service, server, _client = served
    status, _headers, body = _raw_request(server.url, "GET", "/readyz")
    payload = json.loads(body)
    assert status == 200 and payload["status"] == "ready"
    assert payload["breaker"]["state"] == "closed"
    assert payload["pool_degraded"] is False
    assert payload["recoveries_total"] == 0


def test_readyz_reports_degraded_pool_as_not_ready(served):
    _service, server, _client = served
    resilience_stats().set_pool_degraded(True)
    status, headers, body = _raw_request(server.url, "GET", "/readyz")
    assert status == 503
    assert json.loads(body)["status"] == "degraded"
    assert int(headers["Retry-After"]) >= 1


# --------------------------------------------------------------------------- #
# Circuit breaker over the wire
# --------------------------------------------------------------------------- #
def test_breaker_opens_sheds_load_and_recloses():
    service = make_service(
        breaker_failure_threshold=1, breaker_cooldown_seconds=0.4
    )
    server = start_server(service, port=0)
    client = ServiceClient(server.url)
    client.wait_ready()
    try:
        # A deterministically crashing seed fails the backend request...
        fault_injector().configure("seed_crash:0")
        with pytest.raises(RemoteServiceError) as excinfo:
            client.solve("caveman", k=2, q=4, solver="parallel", options=PARALLEL)
        assert excinfo.value.kind == "PoisonTaskError"
        assert excinfo.value.status == 500

        # ...which trips the threshold-1 breaker: shed with Retry-After.
        with pytest.raises(CircuitOpenError):
            client.solve("toy", k=2, q=3)
        status, headers, _body = _raw_request(
            server.url, "POST", "/v1/solve",
            {"graph": "toy", "k": 2, "q": 3},
        )
        assert status == 503
        assert 1 <= int(headers["Retry-After"]) <= 60
        status, _headers, body = _raw_request(server.url, "GET", "/readyz")
        assert status == 503 and json.loads(body)["status"] == "breaker_open"

        # Breaker rejections never poison the job path either.
        with pytest.raises(CircuitOpenError):
            client.submit_job("toy", k=2, q=3)

        # After the cooldown the probe request closes the circuit again.
        fault_injector().clear()
        deadline_attempts = 50
        while deadline_attempts:
            try:
                response = client.solve("toy", k=2, q=3)
                break
            except CircuitOpenError:
                deadline_attempts -= 1
                time.sleep(0.05)
        assert response["count"] == 1
        status, _headers, body = _raw_request(server.url, "GET", "/readyz")
        assert status == 200 and json.loads(body)["breaker"]["state"] == "closed"
    finally:
        server.drain()


def test_client_retry_rides_out_an_open_breaker():
    service = make_service(
        breaker_failure_threshold=1, breaker_cooldown_seconds=0.2
    )
    server = start_server(service, port=0)
    patient = ServiceClient(
        server.url,
        retry=RetryPolicy(max_attempts=6, backoff_seconds=0.05, jitter=0.0),
    )
    patient.wait_ready()
    try:
        fault_injector().configure("seed_crash:0")
        with pytest.raises(RemoteServiceError):
            patient.solve("caveman", k=2, q=4, solver="parallel", options=PARALLEL)
        fault_injector().clear()
        # No manual waiting: the retrying client honours Retry-After and
        # lands after the breaker's cooldown.
        assert patient.solve("toy", k=2, q=3)["count"] == 1
    finally:
        server.drain()


def test_queue_full_429_carries_a_derived_retry_after():
    service = make_service()
    server = start_server(
        service,
        port=0,
        job_config=JobManagerConfig(max_concurrent=1, max_queue_depth=0),
    )
    client = ServiceClient(server.url)
    client.wait_ready()
    try:
        first = client.submit_job("busy", k=2, q=4, result_buffer=8)
        status, headers, body = _raw_request(
            server.url, "POST", "/v1/jobs", {"graph": "busy", "k": 2, "q": 4}
        )
        assert status == 429
        assert json.loads(body)["error"]["type"] == "JobQueueFullError"
        assert 1 <= int(headers["Retry-After"]) <= 60
        client.cancel_job(first["id"])
        client.wait_job(first["id"])
    finally:
        server.drain()


# --------------------------------------------------------------------------- #
# Worker death mid-enumeration: recover bit-identically
# --------------------------------------------------------------------------- #
def test_sync_solve_survives_worker_kill_bit_identically(served):
    _service, server, client = served
    fault_injector().configure("worker_kill:1")
    injected = client.solve(
        "caveman", k=2, q=4, solver="parallel", options=PARALLEL,
        request_timeout=120,
    )
    fault_injector().clear()
    clean = client.solve(
        "caveman", k=2, q=4, solver="parallel", options=PARALLEL,
        request_timeout=120,
    )
    assert injected["count"] == clean["count"]
    assert sorted(map(sorted, injected["kplexes"])) == sorted(
        map(sorted, clean["kplexes"])
    )
    metrics = client.metrics()
    assert metrics["recoveries_total"] >= 1
    rendered = render_prometheus(metrics)
    recovery_lines = [
        line for line in rendered.splitlines()
        if line.startswith("kplex_recoveries_total")
    ]
    assert recovery_lines and float(recovery_lines[0].split()[-1]) >= 1


def test_streamed_job_survives_worker_kill_bit_identically(served):
    _service, _server, client = served

    def run_job():
        record = client.submit_job(
            "caveman", k=2, q=4, solver="parallel", options=PARALLEL
        )
        records = list(client.iter_job_results(record["id"]))
        final = records[-1]
        assert final["done"] is True and final["state"] == "succeeded"
        return sorted(sorted(r["kplex"]) for r in records[:-1])

    fault_injector().configure("worker_kill:1")
    injected = run_job()
    fault_injector().clear()
    clean = run_job()
    assert injected == clean
    assert resilience_stats().get("pool_recoveries") >= 1


# --------------------------------------------------------------------------- #
# Dropped result streams: resume from the last received index
# --------------------------------------------------------------------------- #
def test_stream_drop_resumes_exactly_with_retrying_client(served):
    _service, server, client = served
    record = client.submit_job("busy", k=2, q=4, result_buffer=100_000)
    job_id = record["id"]
    done = client.wait_job(job_id, timeout=120)
    assert done["state"] == "succeeded"
    expected_count = done["progress"]["results"]
    assert expected_count > 8  # enough records for a mid-stream cut

    fault_injector().configure("http_drop:1@5")
    streaming = ServiceClient(
        server.url,
        retry=RetryPolicy(max_attempts=4, backoff_seconds=0.01, jitter=0.0),
    )
    records = list(streaming.iter_job_results(job_id))
    assert fault_injector().snapshot()[0]["fired"] == 1  # the cut happened
    final = records.pop()
    assert final["done"] is True
    # Exactly the remaining records after the cut: every index once, in
    # order, with no duplicates and no holes.
    assert [r["index"] for r in records] == list(range(expected_count))
    window = client.job_results(job_id)
    assert [sorted(r["kplex"]) for r in records] == [
        sorted(r["kplex"]) for r in window["results"]
    ]


def test_stream_drop_without_retry_raises_remote_error(served):
    _service, _server, client = served
    record = client.submit_job("busy", k=2, q=4, result_buffer=100_000)
    client.wait_job(record["id"], timeout=120)
    fault_injector().configure("http_drop:1@3")
    with pytest.raises(RemoteServiceError, match="dropped"):
        list(client.iter_job_results(record["id"]))


# --------------------------------------------------------------------------- #
# Crash-safe persistence: torn snapshots quarantine, boots stay clean
# --------------------------------------------------------------------------- #
def test_torn_snapshot_quarantines_and_boots_cold(tmp_path):
    path = tmp_path / "state.json"
    with make_service() as writer:
        writer.solve("toy", 2, 3)
        fault_injector().configure("snapshot_torn:1")
        save_snapshot(writer, path)
    # The injected torn write left unparseable JSON behind.
    with pytest.raises(SnapshotError):
        load_snapshot(path)

    with make_service(result_cache_entries=8) as reader:
        report = warm_start(reader, path, quarantine_corrupt=True)
        assert report.quarantined == str(path) + ".corrupt"
        assert report.replayed == 0 and "quarantined" in report.summary()
        assert not path.exists()
        assert (tmp_path / "state.json.corrupt").exists()
        assert resilience_stats().get("snapshots_quarantined") == 1
        # The boot is clean: the next snapshot cycle works end to end.
        writer_report = save_snapshot(reader, path)
        assert writer_report["format"] == load_snapshot(path)["format"]
    # Without opt-in, corruption still raises (library callers decide).
    with make_service() as strict:
        (tmp_path / "torn2.json").write_text("{\"format\": \"kplex")
        with pytest.raises(SnapshotError):
            warm_start(strict, tmp_path / "torn2.json")


def test_quarantine_never_overwrites_an_earlier_corpse(tmp_path):
    from repro.server import quarantine_snapshot

    path = tmp_path / "snap.json"
    (tmp_path / "snap.json.corrupt").write_text("old corpse")
    path.write_text("new corpse")
    target = quarantine_snapshot(path)
    assert target == str(path) + ".corrupt.1"
    assert (tmp_path / "snap.json.corrupt").read_text() == "old corpse"


# --------------------------------------------------------------------------- #
# CLI surface for the harness
# --------------------------------------------------------------------------- #
def test_cli_exposes_fault_and_breaker_flags():
    from repro.cli import _build_parser

    args = _build_parser().parse_args(
        [
            "serve-http", "--port", "0", "--fault", "worker_kill:1",
            "--breaker-threshold", "2", "--breaker-cooldown", "0.5",
        ]
    )
    assert args.fault == "worker_kill:1"
    assert args.breaker_threshold == 2 and args.breaker_cooldown == 0.5
    jobs_args = _build_parser().parse_args(
        ["jobs", "stream", "abc", "--retries", "3"]
    )
    assert jobs_args.retries == 3


def test_poison_task_fails_cleanly_over_jobs_api(served):
    # The acceptance bar for poison handling: structured failure record,
    # no retry loop, no hung pool — the job API keeps serving afterwards.
    _service, _server, client = served
    fault_injector().configure("seed_crash:0")
    record = client.submit_job("caveman", k=2, q=4, solver="parallel", options=PARALLEL)
    done = client.wait_job(record["id"], timeout=120)
    assert done["state"] == "failed"
    assert done["error"].startswith("PoisonTaskError:")
    assert "crashed its worker" in done["error"]
    fault_injector().clear()
    assert client.solve("toy", k=2, q=3)["count"] == 1
