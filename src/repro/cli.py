"""Command-line interface.

``kplex-enum`` exposes the main capabilities of the library without writing
any Python; every mining command is routed through the
:class:`repro.api.KPlexEngine` facade:

* ``kplex-enum enumerate GRAPH -k 2 -q 10`` — enumerate maximal k-plexes of
  an edge-list / DIMACS / METIS file and print (or save) the results;
* ``kplex-enum query GRAPH V... -k 2 -q 10`` — community search anchored at
  the given query vertices;
* ``kplex-enum solvers`` — list the registered solver backends;
* ``kplex-enum datasets`` — list the bundled surrogate datasets (Table 2);
* ``kplex-enum experiment table3`` — run one of the paper's experiments and
  print the reproduced table or figure series.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .analysis.export import write_results
from .analysis.reporting import render_series, render_table
from .api import EnumerationRequest, KPlexEngine, solver_names, solver_table
from .core.config import NAMED_VARIANTS
from .datasets import all_datasets, load_dataset
from .errors import ReproError
from .experiments import figures as figure_drivers
from .experiments import tables as table_drivers
from .graph.io import load_graph

_EXPERIMENTS = {
    "table2": lambda scale: render_table(table_drivers.table2_datasets(scale), title="Table 2"),
    "table3": lambda scale: render_table(table_drivers.table3_sequential(scale), title="Table 3"),
    "table4": lambda scale: render_table(table_drivers.table4_parallel(scale), title="Table 4"),
    "table5": lambda scale: render_table(
        table_drivers.table5_upper_bound_ablation(scale), title="Table 5"
    ),
    "table6": lambda scale: render_table(
        table_drivers.table6_pruning_ablation(scale), title="Table 6"
    ),
    "table7": lambda scale: render_table(table_drivers.table7_memory(scale), title="Table 7"),
    "figure7": lambda scale: "\n\n".join(
        render_series(series, x_label="q", title=f"Figure 7 — {name}")
        for name, series in figure_drivers.figure7_vary_q(scale).items()
    ),
    "figure8": lambda scale: render_series(
        figure_drivers.figure8_speedup(scale), x_label="workers", title="Figure 8"
    ),
    "figure9": lambda scale: "\n\n".join(
        render_series(series, x_label="q", title=f"Figure 9 — {name}")
        for name, series in figure_drivers.figure9_basic_vs_ours(scale).items()
    ),
    "figure13": lambda scale: render_series(
        figure_drivers.figure13_timeout(scale), x_label="timeout", title="Figure 13"
    ),
}


def _add_mining_arguments(parser: argparse.ArgumentParser) -> None:
    """Options shared by every command that dispatches an EnumerationRequest."""
    parser.add_argument("-k", type=int, required=True, help="k-plex parameter")
    parser.add_argument("-q", type=int, required=True, help="minimum k-plex size")
    parser.add_argument(
        "--solver",
        default="ours",
        choices=sorted(solver_names()),
        help="solver backend from the registry (default: ours)",
    )
    parser.add_argument(
        "--variant",
        default=None,
        choices=sorted(NAMED_VARIANTS),
        help="algorithm configuration variant for configurable solvers",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop the run after this wall-clock budget",
    )
    parser.add_argument(
        "--max-results",
        type=int,
        default=None,
        metavar="N",
        help="stop after N results",
    )
    parser.add_argument(
        "--format", default="auto", choices=["auto", "edgelist", "dimacs", "metis"]
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="kplex-enum",
        description="Enumerate large maximal k-plexes (EDBT 2025 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    enumerate_parser = subparsers.add_parser(
        "enumerate", help="enumerate maximal k-plexes of a graph file or bundled dataset"
    )
    enumerate_parser.add_argument("graph", help="path to a graph file, or dataset:<name>")
    _add_mining_arguments(enumerate_parser)
    enumerate_parser.add_argument("--json", action="store_true", help="print results as JSON")
    enumerate_parser.add_argument(
        "--limit", type=int, default=20, help="maximum number of k-plexes to print (0 = all)"
    )
    enumerate_parser.add_argument("--stats", action="store_true", help="print search statistics")
    enumerate_parser.add_argument(
        "--output",
        default=None,
        help="write the results to a file (.txt, .csv or .jsonl chosen by extension)",
    )

    query_parser = subparsers.add_parser(
        "query", help="enumerate maximal k-plexes containing the given query vertices"
    )
    query_parser.add_argument("graph", help="path to a graph file, or dataset:<name>")
    query_parser.add_argument("vertices", nargs="+", help="query vertex labels")
    _add_mining_arguments(query_parser)

    subparsers.add_parser("solvers", help="list the registered solver backends")
    subparsers.add_parser("datasets", help="list the bundled surrogate datasets")

    experiment_parser = subparsers.add_parser(
        "experiment", help="reproduce one of the paper's tables or figures"
    )
    experiment_parser.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment_parser.add_argument(
        "--scale", default="quick", choices=["quick", "full"], help="workload scale"
    )
    return parser


def _load_input_graph(spec: str, fmt: str):
    if spec.startswith("dataset:"):
        return load_dataset(spec.split(":", 1)[1])
    return load_graph(spec, fmt=fmt)


def _request_from_args(args: argparse.Namespace, graph, **extra) -> EnumerationRequest:
    """Single construction point: all parameter validation happens here."""
    return EnumerationRequest(
        graph=graph,
        k=args.k,
        q=args.q,
        solver=args.solver,
        variant=args.variant,
        timeout_seconds=args.timeout,
        max_results=getattr(args, "max_results", None),
        **extra,
    )


def _command_enumerate(args: argparse.Namespace) -> int:
    graph = _load_input_graph(args.graph, args.format)
    engine = KPlexEngine()
    response = engine.solve(_request_from_args(args, graph))
    if args.json:
        print(json.dumps(response.as_dict(), indent=2, default=str))
    else:
        print(
            f"{response.count} maximal {args.k}-plexes with at least {args.q} vertices "
            f"(solver: {response.solver}, {response.termination})"
        )
        limit = args.limit if args.limit > 0 else response.count
        for plex in response.kplexes[:limit]:
            print(f"  size={plex.size}: {list(plex.labels)}")
        if response.count > limit:
            print(f"  ... ({response.count - limit} more, use --limit 0 to print all)")
    if args.stats:
        stats = response.statistics
        print(
            f"time: elapsed={response.elapsed_seconds:.4f}s "
            f"preprocess={stats.preprocess_seconds:.4f}s "
            f"search={stats.search_seconds:.4f}s"
        )
        print(stats)
    if args.output:
        fmt = write_results(response.kplexes, args.output)
        print(f"wrote {response.count} k-plexes to {args.output} ({fmt})")
    return 0


def _parse_query_labels(graph, labels):
    parsed = []
    for label in labels:
        try:
            parsed.append(graph.index_of(label))
        except Exception:
            parsed.append(graph.index_of(int(label)))
    return parsed


def _command_query(args: argparse.Namespace) -> int:
    graph = _load_input_graph(args.graph, args.format)
    query = tuple(_parse_query_labels(graph, args.vertices))
    engine = KPlexEngine()
    response = engine.solve(_request_from_args(args, graph, query_vertices=query))
    print(
        f"{response.count} maximal {args.k}-plexes with at least {args.q} vertices "
        f"containing {args.vertices}"
    )
    for plex in response.kplexes:
        print(f"  size={plex.size}: {list(plex.labels)}")
    return 0


def _command_solvers(_args: argparse.Namespace) -> int:
    print(render_table(solver_table(), title="Registered solvers (repro.api)"))
    return 0


def _command_datasets(_args: argparse.Namespace) -> int:
    rows = [
        {
            "name": spec.name,
            "category": spec.category,
            "paper_n": spec.paper_n,
            "paper_m": spec.paper_m,
            "description": spec.description,
        }
        for spec in all_datasets()
    ]
    print(render_table(rows, title="Bundled surrogate datasets (see DESIGN.md §5)"))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    print(_EXPERIMENTS[args.name](args.scale))
    return 0


_COMMANDS = {
    "enumerate": _command_enumerate,
    "query": _command_query,
    "solvers": _command_solvers,
    "datasets": _command_datasets,
    "experiment": _command_experiment,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``kplex-enum`` console script."""
    parser = _build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handler = _COMMANDS.get(args.command)
    if handler is None:
        parser.error(f"unknown command {args.command!r}")
        return 2
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
