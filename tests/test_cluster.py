"""Tests for the sharded multi-replica serving layer (:mod:`repro.cluster`).

Pure-logic pieces (hash ring, histogram merging, snapshot compaction,
client failover) are tested in-process; one module-scoped two-replica
cluster exercises the real topology end to end — registration fan-out,
ring routing, peer warming, merged metrics, SIGKILL failover, drain.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import ClusterError, RemoteServiceError
from repro.cluster import HashRing, ReplicaSet, start_cluster
from repro.obs import Histogram, MetricsRegistry
from repro.server import ServiceClient, snapshot_service, start_server
from repro.service import KPlexService, ServiceConfig
from repro.service.cache import ByteBudgetLRU

EDGES = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]


def make_service(**config_kwargs) -> KPlexService:
    return KPlexService(config=ServiceConfig(max_workers=2, **config_kwargs))


# --------------------------------------------------------------------------- #
# Hash ring
# --------------------------------------------------------------------------- #
def test_ring_lookup_is_deterministic_and_member():
    ring = HashRing(["r0", "r1", "r2"])
    keys = [f"graph-{i}" for i in range(200)]
    first = [ring.lookup(key) for key in keys]
    assert first == [ring.lookup(key) for key in keys]
    assert set(first) <= {"r0", "r1", "r2"}
    # Every replica owns a reasonable share of 200 keys.
    for node in ring.nodes:
        assert first.count(node) > 20


def test_ring_add_remove_moves_about_one_nth_of_keys():
    keys = [f"graph-{i}" for i in range(1000)]
    ring = HashRing(["r0", "r1", "r2", "r3"])
    before = {key: ring.lookup(key) for key in keys}

    ring.add("r4")
    after_add = {key: ring.lookup(key) for key in keys}
    moved = sum(1 for key in keys if before[key] != after_add[key])
    # Ideal movement is 1/5 of the keys; allow generous slack for hash noise.
    assert 0.10 * len(keys) <= moved <= 0.35 * len(keys)
    # Every moved key landed on the new node, never reshuffled between old ones.
    assert all(
        after_add[key] == "r4" for key in keys if before[key] != after_add[key]
    )

    ring.remove("r4")
    assert {key: ring.lookup(key) for key in keys} == before


def test_ring_lookup_n_distinct_and_bounded():
    ring = HashRing(["r0", "r1", "r2"])
    order = ring.lookup_n("some-graph", 3)
    assert len(order) == 3 and len(set(order)) == 3
    assert order[0] == ring.lookup("some-graph")
    assert ring.lookup_n("some-graph", 10) == order  # capped at ring size


def test_ring_stable_across_processes():
    keys = ["jazz", "wiki-vote", "demo", "graph-x"]
    script = (
        "from repro.cluster import HashRing; "
        "ring = HashRing(['r0', 'r1', 'r2']); "
        f"print(','.join(ring.lookup(k) for k in {keys!r}))"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.check_output([sys.executable, "-c", script], env=env, text=True)
    local = HashRing(["r0", "r1", "r2"])
    assert out.strip() == ",".join(local.lookup(key) for key in keys)


def test_ring_empty_and_errors():
    ring = HashRing()
    with pytest.raises(KeyError):
        ring.lookup("anything")
    ring.add("only")
    assert ring.lookup("anything") == "only"
    ring.add("only")  # idempotent: no duplicate vnodes
    assert len(ring) == 1
    ring.remove("ghost")  # removing a non-member is a no-op
    assert ring.nodes == ["only"]
    with pytest.raises(ValueError):
        ring.add("")


# --------------------------------------------------------------------------- #
# Histogram / registry merging
# --------------------------------------------------------------------------- #
def test_histogram_from_snapshot_roundtrip_and_merge():
    one = Histogram(buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 5.0, 50.0):
        one.observe(value)
    restored = Histogram.from_snapshot(one.snapshot())
    assert restored.snapshot() == one.snapshot()

    two = Histogram(buckets=(0.1, 1.0, 10.0))
    two.observe(0.2)
    merged = Histogram(buckets=(0.1, 1.0, 10.0))
    merged.merge(one)
    merged.merge(two)
    snap = merged.snapshot()
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(55.75)


def test_registry_merge_snapshot_sums_counters_and_histograms():
    def build(factor):
        registry = MetricsRegistry()
        registry.counter("requests_total", labels={"route": "/v1/solve"}).inc(
            3 * factor
        )
        registry.gauge("in_flight").inc(2 * factor)
        hist = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05 * factor)
        hist.observe(5.0)
        return registry

    merged = MetricsRegistry()
    merged.merge_snapshot(build(1).snapshot())
    merged.merge_snapshot(build(2).snapshot())
    doc = merged.snapshot()
    assert doc["requests_total"]["series"][0]["value"] == 9
    assert doc["in_flight"]["series"][0]["value"] == 6
    hist = doc["latency_seconds"]["series"][0]
    assert hist["count"] == 4
    text = merged.render_prometheus()
    assert 'requests_total{route="/v1/solve"} 9' in text


# --------------------------------------------------------------------------- #
# Cache hit tracking + snapshot compaction
# --------------------------------------------------------------------------- #
def test_lru_tracks_hits_and_peek_is_non_mutating():
    lru = ByteBudgetLRU(max_entries=4, max_bytes=1 << 20)
    lru.put("a", "payload", 7)
    assert lru.peek("a") and not lru.peek("b")
    assert lru.get("a") == "payload"
    assert lru.get("a") == "payload"
    entries = lru.export_entries()
    assert entries[0][0] == "a" and entries[0][2] == 2  # two hits recorded
    before = lru.export_entries()
    assert lru.peek("a")
    assert lru.export_entries() == before  # peek did not bump hits/recency


def test_snapshot_compaction_keeps_hottest_specs_and_reports_drops():
    service = make_service()
    try:
        service.catalog.register("toy", EDGES)
        # Three distinct specs with hit counts 2 / 1 / 0.
        for _ in range(3):
            service.solve(service.request("toy", k=2, q=3))
        for _ in range(2):
            service.solve(service.request("toy", k=1, q=3))
        service.solve(service.request("toy", k=1, q=2))

        full = snapshot_service(service)
        assert len(full["hot_requests"]) == 3
        assert full["spec_compaction"]["dropped"] == 0

        bounded = snapshot_service(service, max_requests=2)
        kept = {(spec["k"], spec["q"]) for spec in bounded["hot_requests"]}
        assert kept == {(2, 3), (1, 3)}  # the cold (1, 2) spec was cut
        compaction = bounded["spec_compaction"]
        assert compaction["policy"] == "top-hits-age-decay"
        assert compaction["candidates"] == 3
        assert compaction["kept"] == 2 and compaction["dropped"] == 1
        assert compaction["dropped_specs"][0]["k"] == 1
        assert compaction["dropped_specs"][0]["q"] == 2
    finally:
        service.close()


# --------------------------------------------------------------------------- #
# Warm-spec hook
# --------------------------------------------------------------------------- #
def test_warm_spec_hook_fires_on_miss_and_job_not_on_hit():
    service = make_service()
    fired = []
    service.warm_spec_hook = lambda request, source: fired.append(
        (request.k, request.q, source)
    )
    try:
        service.catalog.register("toy", EDGES)
        service.solve(service.request("toy", k=2, q=3))
        assert fired == [(2, 3, "miss")]
        service.solve(service.request("toy", k=2, q=3))  # cache hit: no event
        assert len(fired) == 1

        from repro.jobs import JobManager

        manager = JobManager(service)
        try:
            job = manager.submit(service.request("toy", k=1, q=3))
            manager.wait(job.id, timeout=30.0)
            assert (1, 3, "job") in fired
        finally:
            manager.close()
    finally:
        service.close()


# --------------------------------------------------------------------------- #
# Client failover + replica headers
# --------------------------------------------------------------------------- #
@pytest.fixture()
def replica_server():
    service = make_service()
    server = start_server(service, port=0, replica_id="solo")
    client = ServiceClient(server.url)
    client.wait_ready()
    try:
        yield server, client
    finally:
        server.drain()


def test_client_surfaces_replica_and_cache_headers(replica_server):
    _server, client = replica_server
    client.register("toy", edges=EDGES)
    client.solve("toy", k=2, q=3)
    assert client.last_replica == "solo"
    assert client.last_cache == "miss"
    client.solve("toy", k=2, q=3)
    assert client.last_cache == "hit"


def test_client_get_fails_over_to_live_endpoint(replica_server):
    server, _client = replica_server
    # Port 9 (discard) refuses connections immediately on loopback.
    client = ServiceClient(["http://127.0.0.1:9", server.url], timeout=5.0)
    assert client.health()["status"] == "ok"
    assert client.base_url == server.url  # rotated off the dead endpoint
    client.close()


def test_client_post_does_not_silently_fail_over():
    client = ServiceClient(
        ["http://127.0.0.1:9", "http://127.0.0.1:9"], timeout=2.0
    )
    with pytest.raises(RemoteServiceError):
        client.register("toy", edges=EDGES)
    client.close()


# --------------------------------------------------------------------------- #
# ReplicaSet validation
# --------------------------------------------------------------------------- #
def test_replica_set_rejects_empty_and_duplicate_ids():
    with pytest.raises(ClusterError):
        ReplicaSet([], lambda rid: [])
    with pytest.raises(ClusterError):
        ReplicaSet(["a", "a"], lambda rid: [])


# --------------------------------------------------------------------------- #
# End-to-end: a real two-replica cluster
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def cluster():
    router = start_cluster(
        replicas=2,
        replica_args=["--workers", "2", "--cache-entries", "64"],
        boot_timeout=60.0,
    )
    client = ServiceClient(router.url, timeout=60.0)
    client.wait_ready(timeout=30.0)
    client.register("toy", edges=EDGES)
    try:
        yield router, client
    finally:
        exit_codes = router.drain()
        # Replicas still alive at drain time exit 0 under the SIGTERM
        # contract (the killed-and-restarted one included).
        assert all(code == 0 for code in exit_codes.values())


def test_cluster_routes_solves_and_stamps_replica(cluster):
    router, client = cluster
    response = client.solve("toy", k=2, q=3)
    assert response["count"] == 1
    owner = router.ring.lookup("toy")
    assert client.last_replica == owner
    assert client.last_cache in ("hit", "miss")
    # Same spec again: routed to the same owner, now a cache hit.
    client.solve("toy", k=2, q=3)
    assert client.last_replica == owner and client.last_cache == "hit"


def test_cluster_registration_fans_out_to_every_replica(cluster):
    router, client = cluster
    names = [row["name"] for row in client.graphs()]
    assert "toy" in names
    for replica in router.replica_set.live():
        direct = ServiceClient(replica.url)
        assert "toy" in [row["name"] for row in direct.graphs()]
        direct.close()


def test_cluster_placement_and_health(cluster):
    router, client = cluster
    assert client.health()["status"] == "ok"
    payload = client._call("GET", "/v1/cluster?graph=toy")
    assert payload["placement"]["order"][0] == router.ring.lookup("toy")
    assert len(payload["replicas"]) == 2


def test_cluster_peer_warm_reaches_backup_replica(cluster):
    router, client = cluster
    client.solve("toy", k=1, q=4)  # unique spec: a miss on the owner
    backup_id = next(
        rid for rid in router.ring.lookup_n("toy", 2)
        if rid != router.ring.lookup("toy")
    )
    backup = router.replica_set.get(backup_id)
    direct = ServiceClient(backup.url)
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        direct.solve("toy", k=1, q=4)
        if direct.last_cache == "hit":
            break
        time.sleep(0.05)
    assert direct.last_cache == "hit"  # warmed spec, not our probe's miss
    direct.close()


def test_cluster_merged_metrics_json_and_prometheus(cluster):
    _router, client = cluster
    document = client.metrics()
    assert document["cluster"]["replicas"] == 2
    assert document["requests_total"] >= 1
    assert set(document["replicas"]) == {"r0", "r1"}
    text = client.metrics(fmt="prometheus")
    assert "kplex_cluster_replica_restarts_total" in text
    assert "kplex_cluster_up 2" in text


def test_cluster_jobs_route_and_stream_through_router(cluster):
    _router, client = cluster
    record = client.submit_job("toy", k=2, q=4)
    done = client.wait_job(record["id"], timeout=30.0)
    assert done["state"] == "succeeded"
    window = client.job_results(record["id"])
    assert window["complete"] is True and len(window["results"]) >= 1
    records = list(client.iter_job_results(record["id"]))
    final = records[-1]
    assert final["done"] is True and final["state"] == "succeeded"


def test_cluster_trace_propagates_router_to_replica(cluster):
    _router, client = cluster
    client.solve("toy", k=2, q=3)
    solve_id = client.last_request_id
    payload = client._call("GET", f"/v1/trace/{solve_id}")
    assert payload["router"]["spans"]
    assert payload["router"]["spans"][0]["name"] == "router"
    assert payload["replica"]["request_id"] == solve_id


def test_cluster_survives_sigkill_and_restarts_replica(cluster):
    router, client = cluster
    before = router.replica_set.restarts_total
    owner = router.replica_set.get(router.ring.lookup("toy"))
    os.kill(owner.pid, signal.SIGKILL)
    # The very next request must still succeed (ring-order failover).
    response = client.solve("toy", k=2, q=3)
    assert response["count"] == 1
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if router.replica_set.restarts_total > before and owner.state == "up":
            break
        time.sleep(0.1)
    assert router.replica_set.restarts_total > before
    assert owner.state == "up"
    # The restarted replica re-learned the catalog via registration replay.
    direct = ServiceClient(owner.url)
    assert "toy" in [row["name"] for row in direct.graphs()]
    direct.close()
    assert client.health()["status"] == "ok"
