"""Deterministic memory estimators for the serving layer's budgets.

The caches in :mod:`repro.service.cache` and the catalog's per-graph
accounting need a *byte cost* for heterogeneous Python objects (graphs,
prepared indexes, responses, seed contexts).  ``sys.getsizeof`` is shallow
and recursive measurement is far too slow for a hot cache path, so the
estimators below use closed-form models calibrated against CPython 3.11
container overheads.  They are estimates — stable, monotone in the payload
size, and cheap — which is exactly what an eviction budget needs; nothing
here claims allocator-exact accounting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.response import EnumerationResponse
    from ..core.seeds import SeedContext
    from ..graph import Graph
    from ..graph.prepared import PreparedGraph

# CPython 3.11 container overheads (64-bit), rounded to friendly constants.
_OBJECT = 56  # small instance / dataclass header
_POINTER = 8
_SET_ENTRY = 60  # amortised per-element cost of a (frozen)set slot
_LIST_ENTRY = 8  # pointer per list slot
_SMALL_INT = 32  # boxed int (most vertex ids are cached small ints; be safe)
_TUPLE_BASE = 56


def estimate_graph_bytes(graph: "Graph") -> int:
    """Approximate resident size of a :class:`~repro.graph.graph.Graph`.

    Counts the adjacency frozensets (the dominant term: one entry per
    directed edge), the label list and the label index dictionary.
    """
    n = graph.num_vertices
    m = graph.num_edges
    adjacency = n * (_OBJECT + _POINTER) + 2 * m * _SET_ENTRY
    labels = n * (_LIST_ENTRY + _SMALL_INT)
    label_index = n * (2 * _POINTER + _SET_ENTRY)
    return _OBJECT + adjacency + labels + label_index


def estimate_prepared_bytes(prepared: "PreparedGraph") -> int:
    """Approximate resident size of the materialised prepared-index artefacts.

    Only counts what has actually been built: the CSR arrays, the core
    decomposition lists, and every *distinct* cached core subgraph (identity
    entries share the source graph and contribute only their vertex map).
    """
    total = _OBJECT
    csr = prepared._csr
    if csr is not None:
        total += csr.offsets.itemsize * len(csr.offsets)
        total += csr.neighbors.itemsize * len(csr.neighbors)
    decomposition = prepared._decomposition
    if decomposition is not None:
        total += 2 * len(decomposition.order) * (_LIST_ENTRY + _SMALL_INT)
    if prepared._position is not None:
        total += len(prepared._position) * (_LIST_ENTRY + _SMALL_INT)
    for core_graph, vertex_map in prepared._cores.values():
        total += len(vertex_map) * (_LIST_ENTRY + _SMALL_INT)
        if core_graph is not prepared.graph:
            total += estimate_graph_bytes(core_graph)
            nested = core_graph._prepared
            if nested is not None:
                total += estimate_prepared_bytes(nested)
    return total


def estimate_response_bytes(response: "EnumerationResponse") -> int:
    """Approximate resident size of a cached :class:`EnumerationResponse`.

    The payload is dominated by the result k-plexes: two tuples (vertex ids
    and labels) per k-plex.  The request's graph is deliberately *not*
    counted — cache entries hold a reference to a graph that lives in the
    catalog anyway, so charging each entry for it would make a handful of
    results on a large graph look gigantic.
    """
    total = 4 * _OBJECT  # response + statistics + request + metadata
    for plex in response.kplexes:
        members = len(plex.vertices)
        total += _OBJECT + 2 * (_TUPLE_BASE + members * (_POINTER + _SMALL_INT))
    return total


def estimate_seed_context_bytes(context: "SeedContext") -> int:
    """Approximate resident size of one cached :class:`SeedContext`.

    Counts the dense subgraph (bitset adjacency rows plus the local index
    dictionary) and the per-context lists; bitset rows cost ``size`` bits
    each, rounded up to whole bytes, plus the int-object header.
    """
    size = context.subgraph.size
    row_bytes = _SMALL_INT + max(1, size // 8)
    total = _OBJECT * 2  # context + subgraph
    total += size * (row_bytes + _POINTER)  # adjacency rows
    total += size * (2 * _POINTER + _SET_ENTRY)  # local index dict
    total += 3 * size * (_LIST_ENTRY + _SMALL_INT)  # vertices, degrees, masks
    externals = len(context.external_vertices)
    total += 2 * externals * (_LIST_ENTRY + row_bytes)
    if context.pair_ok is not None:
        total += size * (_LIST_ENTRY + row_bytes)
    return total
