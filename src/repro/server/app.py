"""The HTTP server process wrapper: lifecycle, snapshots, graceful drain.

:class:`KPlexHTTPServer` is a :class:`ThreadingHTTPServer` that owns a
:class:`~repro.service.service.KPlexService` plus the durable-state hooks
of :mod:`repro.server.persistence`:

* an optional **periodic snapshot** thread writes the warm state to disk
  every ``snapshot_interval`` seconds (atomically, so a crash mid-write
  never corrupts the previous snapshot);
* :meth:`drain` implements the shutdown contract: stop accepting HTTP
  requests, finish in-flight work (``service.close(drain=True)``), write a
  final snapshot, and only then release the sockets;
* :func:`serve_http` is the blocking entry point used by the CLI — it
  installs SIGTERM/SIGINT handlers that trigger exactly that drain, so a
  supervisor's ``kill -TERM`` is always a clean exit.

For tests and embedded use, :func:`start_server` boots the same server on
a background thread and returns it ready to accept requests.
"""

from __future__ import annotations

import signal
import sys
import threading
from http.server import ThreadingHTTPServer
from typing import Callable, Optional, Union

from ..errors import ParameterError, SnapshotError
from ..jobs import DRAIN_POLICIES, DRAIN_WAIT, JobManager, JobManagerConfig
from ..obs import TraceRecorder
from ..service import KPlexService
from .handlers import KPlexRequestHandler
from .persistence import WarmStartReport, save_snapshot, warm_start

DEFAULT_HOST = "127.0.0.1"


class KPlexHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP front-end bound to one :class:`KPlexService`.

    Parameters
    ----------
    address:
        ``(host, port)`` to bind; port ``0`` picks an ephemeral port
        (read the result from :attr:`url`).
    service:
        The service answering the requests.  The server never creates one
        implicitly, so callers control catalog, budgets and lifetime.
    snapshot_path:
        Warm-state snapshot target for the periodic thread, the final
        drain-time snapshot and ``POST /v1/snapshot``; ``None`` disables
        all three.
    snapshot_interval:
        Seconds between periodic snapshots (``None`` = only at drain).
    request_deadline:
        Server-side hard per-request deadline in seconds; a solve that
        exceeds it is answered with a structured ``504``.  ``None`` waits
        forever (the service's own timeout still applies).
    logger:
        Callable receiving access-log lines; ``None`` keeps the server
        quiet (the stdlib default of spamming stderr is never used).
    job_config:
        Budgets of the async ``/v1/jobs`` manager (worker threads, queue
        depth, result buffering, TTL); ``None`` uses the defaults.  The
        job pool is deliberately separate from the sync solve pool so
        background jobs never starve interactive requests.
    drain_jobs:
        What :meth:`drain` does with live jobs: ``"wait"`` (default) lets
        them finish, ``"cancel"`` stops them cooperatively.  Streaming
        clients always receive a well-formed final NDJSON record either
        way.
    trace_capacity:
        How many completed request/job traces the in-memory ring buffer
        behind ``GET /v1/trace`` retains (oldest evicted first).  ``0``
        disables per-request tracing entirely (spans degrade to no-ops
        and the ``/v1/trace`` routes answer 503).
    access_log_format:
        ``"plain"`` for the classic one-line access log, ``"json"`` for
        one JSON object per request (same fields as the ``http_request``
        telemetry event).
    slow_request_threshold:
        Seconds; a request slower than this emits a ``slow_request``
        WARNING event carrying its full span tree.  ``None`` disables it.
    replica_id:
        Identity this process announces in the ``X-KPlex-Replica`` response
        header on every reply.  Set by ``serve-cluster`` so routed traffic
        is attributable over the wire; ``None`` (standalone servers) omits
        the header.
    snapshot_max_specs:
        Cap on persisted hot request specs per snapshot (top-N by hit count
        with age decay, see :func:`~repro.server.persistence.snapshot_service`).
        ``None`` disables the cap.
    """

    # Handler threads are joined on server_close(): an in-flight response is
    # always written before the process exits (the drain contract).
    daemon_threads = False
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple,
        service: KPlexService,
        snapshot_path: Optional[str] = None,
        snapshot_interval: Optional[float] = None,
        request_deadline: Optional[float] = None,
        logger: Optional[Callable[[str], None]] = None,
        job_config: Optional[JobManagerConfig] = None,
        drain_jobs: str = DRAIN_WAIT,
        trace_capacity: int = 256,
        access_log_format: str = "plain",
        slow_request_threshold: Optional[float] = None,
        replica_id: Optional[str] = None,
        snapshot_max_specs: Optional[int] = 256,
    ) -> None:
        if snapshot_max_specs is not None and snapshot_max_specs < 0:
            raise ParameterError(
                f"snapshot_max_specs must be non-negative, got {snapshot_max_specs}"
            )
        if drain_jobs not in DRAIN_POLICIES:
            raise ParameterError(
                f"unknown drain_jobs policy {drain_jobs!r}; "
                f"expected one of {DRAIN_POLICIES}"
            )
        if access_log_format not in ("plain", "json"):
            raise ParameterError(
                f"unknown access_log_format {access_log_format!r}; "
                "expected 'plain' or 'json'"
            )
        super().__init__(address, KPlexRequestHandler)
        self.service = service
        self.recorder = (
            TraceRecorder(capacity=trace_capacity) if trace_capacity > 0 else None
        )
        self.jobs = JobManager(service, job_config, recorder=self.recorder)
        self.drain_jobs = drain_jobs
        self.access_log_format = access_log_format
        self.slow_request_threshold = slow_request_threshold
        self.snapshot_path = snapshot_path
        self.snapshot_interval = snapshot_interval
        self.snapshot_max_specs = snapshot_max_specs
        self.replica_id = replica_id
        self.request_deadline = request_deadline
        self.draining = False
        self._logger = logger
        self._stop_snapshots = threading.Event()
        self._snapshot_thread: Optional[threading.Thread] = None
        # Serialises every snapshot writer (periodic thread, POST
        # /v1/snapshot handler threads, the final drain snapshot).  Each
        # writer already stages into its own unique temp file, but without
        # ordering a slow periodic write could publish *after* — and thereby
        # clobber — the fresher final snapshot of a concurrent drain.
        self._snapshot_lock = threading.Lock()
        self._drain_lock = threading.Lock()
        self._drained = False
        self._drain_done = threading.Event()
        if snapshot_path and snapshot_interval:
            self._snapshot_thread = threading.Thread(
                target=self._snapshot_loop, name="kplex-snapshot", daemon=True
            )
            self._snapshot_thread.start()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        """Base URL of the bound listener (resolves ephemeral ports)."""
        host, port = self.server_address[:2]
        display = "127.0.0.1" if host in ("0.0.0.0", "::") else host
        return f"http://{display}:{port}"

    def log(self, message: str) -> None:
        """Access-log sink used by the request handler."""
        if self._logger is not None:
            self._logger(message)

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def _snapshot_loop(self) -> None:
        while not self._stop_snapshots.wait(self.snapshot_interval):
            try:
                self.write_snapshot()
            except SnapshotError as exc:  # pragma: no cover - disk trouble
                self.log(f"periodic snapshot failed: {exc}")

    def write_snapshot(self) -> Optional[dict]:
        """Write a snapshot now; returns the document (``None`` if disabled).

        Thread-safe: concurrent writers (periodic thread, handler threads,
        drain) are serialised, so the published file is always one writer's
        complete document and a later call can never be overwritten by an
        earlier, staler one.
        """
        if not self.snapshot_path:
            return None
        with self._snapshot_lock:
            return save_snapshot(
                self.service,
                self.snapshot_path,
                max_requests=self.snapshot_max_specs,
                extra={"jobs": self.jobs.summary()},
            )

    def warm_start(
        self, snapshot: Optional[Union[str, dict]] = None
    ) -> Optional[WarmStartReport]:
        """Replay a snapshot (default: :attr:`snapshot_path`) into the service."""
        source = snapshot if snapshot is not None else self.snapshot_path
        if not source:
            return None
        return warm_start(self.service, source)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def drain(self, close_service: bool = True) -> None:
        """Graceful shutdown: reject new work, finish in-flight, snapshot.

        Safe to call from any thread (SIGTERM handlers call it via
        :meth:`initiate_shutdown`) and idempotent.  ``close_service=False``
        leaves the service open for embedding callers that keep using it
        after the HTTP listener is gone.
        """
        with self._drain_lock:
            first = not self._drained
            self._drained = True
        if not first:
            # Another thread is already draining; block until it finishes so
            # every caller observes the same "fully drained" postcondition.
            self._drain_done.wait()
            return
        self.draining = True
        self._stop_snapshots.set()
        self.shutdown()  # stop serve_forever and new accepts
        # Settle the job table before the service closes: "wait" lets live
        # jobs run to completion, "cancel" stops them cooperatively.  Either
        # way every streaming handler observes its job's result log close
        # and writes a well-formed final NDJSON record before server_close()
        # joins it below.
        self.jobs.close(policy=self.drain_jobs)
        if close_service:
            self.service.close(drain=True)
        # Retire the periodic writer before taking the final snapshot: a
        # write already in flight finishes (under the snapshot lock), and
        # nothing can publish a stale document after the final one below.
        if self._snapshot_thread is not None:
            self._snapshot_thread.join()
        try:
            self.write_snapshot()
        except SnapshotError as exc:  # pragma: no cover - disk trouble
            self.log(f"final snapshot failed: {exc}")
        self.server_close()  # joins handler threads (daemon_threads = False)
        self._drain_done.set()

    def initiate_shutdown(self) -> threading.Thread:
        """Kick off :meth:`drain` on a helper thread and return it.

        ``shutdown()`` blocks until ``serve_forever`` exits, so a signal
        handler running *inside* the serving thread must hand the drain to
        another thread or deadlock.
        """
        thread = threading.Thread(target=self.drain, name="kplex-drain")
        thread.start()
        return thread


def start_server(
    service: KPlexService,
    host: str = DEFAULT_HOST,
    port: int = 0,
    **server_kwargs: object,
) -> KPlexHTTPServer:
    """Boot a server on a background thread; returns once it accepts requests."""
    server = KPlexHTTPServer((host, port), service, **server_kwargs)
    thread = threading.Thread(
        target=server.serve_forever, name="kplex-http", daemon=True
    )
    thread.start()
    server._serve_thread = thread  # type: ignore[attr-defined]
    return server


def serve_http(
    service: KPlexService,
    host: str = DEFAULT_HOST,
    port: int = 8080,
    snapshot_path: Optional[str] = None,
    snapshot_interval: Optional[float] = None,
    request_deadline: Optional[float] = None,
    logger: Optional[Callable[[str], None]] = None,
    ready: Optional[Callable[[KPlexHTTPServer], None]] = None,
    install_signal_handlers: bool = True,
    job_config: Optional[JobManagerConfig] = None,
    drain_jobs: str = DRAIN_WAIT,
    trace_capacity: int = 256,
    access_log_format: str = "plain",
    slow_request_threshold: Optional[float] = None,
    replica_id: Optional[str] = None,
    snapshot_max_specs: Optional[int] = 256,
) -> KPlexHTTPServer:
    """Serve until SIGTERM/SIGINT, then drain; the CLI's blocking core.

    ``ready`` is called with the bound server before the first request is
    accepted (the CLI prints the URL there).  On return the server has
    fully drained: no listener, no worker threads, final snapshot written
    (including the job-table summary).
    """
    server = KPlexHTTPServer(
        (host, port),
        service,
        snapshot_path=snapshot_path,
        snapshot_interval=snapshot_interval,
        request_deadline=request_deadline,
        logger=logger,
        job_config=job_config,
        drain_jobs=drain_jobs,
        trace_capacity=trace_capacity,
        access_log_format=access_log_format,
        slow_request_threshold=slow_request_threshold,
        replica_id=replica_id,
        snapshot_max_specs=snapshot_max_specs,
    )
    previous = {}
    if install_signal_handlers:

        def _handle(signum: int, _frame: object) -> None:
            server.log(f"received signal {signum}; draining")
            server.initiate_shutdown()

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, _handle)
            except (ValueError, OSError):  # pragma: no cover - non-main thread
                pass
    try:
        if ready is not None:
            ready(server)
        server.serve_forever()
        server.drain()  # no-op if a signal already drained; else clean stop
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
    return server


def _default_logger(message: str) -> None:  # pragma: no cover - CLI plumbing
    print(message, file=sys.stderr)
