"""Command-line front end: ``kplex-enum lint`` and ``python -m repro.lint``.

Exit codes: 0 — clean (modulo suppressions and baseline); 1 — new
findings (or syntax errors in analysed files); 2 — usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, List, Optional

from .analyzer import analyze
from .baseline import BASELINE_NAME, load_baseline, write_baseline
from .model import find_repo_root
from .registry import check_table, get_check
from .reporters import render_json, render_text, summary_line

__all__ = ["add_lint_arguments", "build_parser", "main", "run_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to analyse (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=f"baseline file (default: <repo-root>/{BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file: every finding counts as new",
    )
    parser.add_argument(
        "--baseline-update",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--fail-on-new",
        action="store_true",
        default=True,
        help="exit 1 when new findings exist (default; see --exit-zero)",
    )
    parser.add_argument(
        "--exit-zero",
        action="store_true",
        help="always exit 0, reporting findings without failing",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CHECK",
        default=None,
        help="run only this check (repeatable)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        metavar="CHECK",
        default=None,
        help="skip this check (repeatable)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed/baselined findings in text output",
    )
    parser.add_argument(
        "--list-checks",
        action="store_true",
        help="list registered checks and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Project-specific static analysis for the k-plex repo.",
    )
    add_lint_arguments(parser)
    return parser


def run_lint(
    args: argparse.Namespace,
    stdout: Optional[IO[str]] = None,
    stderr: Optional[IO[str]] = None,
) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    if args.list_checks:
        width = max((len(row["check"]) for row in check_table()), default=0)
        for row in check_table():
            out.write(f"{row['check']:<{width}}  {row['description']}\n")
        return 0

    root = find_repo_root()
    baseline_path = (
        Path(args.baseline) if args.baseline else root / BASELINE_NAME
    )
    try:
        if args.select:
            for name in args.select:
                get_check(name)
        if args.disable:
            for name in args.disable:
                get_check(name)
    except ValueError as exc:
        err.write(f"error: {exc}\n")
        return 2

    missing = [
        path
        for path in args.paths
        if not (Path(path) if Path(path).is_absolute() else root / path).exists()
    ]
    if missing:
        err.write(f"error: no such path: {', '.join(missing)}\n")
        return 2

    baseline = None
    if not args.no_baseline and not args.baseline_update:
        baseline = load_baseline(baseline_path)
    result = analyze(
        args.paths,
        root=root,
        select=args.select,
        disable=args.disable,
        baseline=baseline,
    )

    if args.baseline_update:
        count = write_baseline(baseline_path, result.findings)
        out.write(
            f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
            f"to {baseline_path}\n"
        )
        return 0

    if args.format == "json":
        render_json(result, out)
    else:
        render_text(result, out, show_quiet=args.show_suppressed)

    if result.syntax_errors:
        return 1
    if result.new_findings and not args.exit_zero:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return run_lint(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
