"""Tests for the observability layer: traces, metrics, events, propagation."""

import io
import json
import logging
import threading

import pytest

from repro.core.stats import PER_SEED_TOP_N, _PER_SEED_PRUNE_AT, SearchStatistics
from repro.errors import RemoteServiceError
from repro.graph import Graph, generators
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Trace,
    TraceRecorder,
    activate,
    attach_span_record,
    configure_event_logging,
    current_span,
    current_trace,
    escape_label_value,
    log_event,
    new_request_id,
    remove_event_handler,
    span,
    span_record,
    start_span,
)
from repro.parallel import ParallelConfig, parallel_enumerate_maximal_kplexes
from repro.resilience import fault_injector
from repro.server import ServiceClient, start_server
from repro.service import KPlexService, ServiceConfig

from _helpers import vertex_sets

EDGES = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]


# --------------------------------------------------------------------------- #
# Histogram
# --------------------------------------------------------------------------- #
def test_histogram_cumulative_buckets_and_bounds():
    hist = Histogram(buckets=(1.0, 2.0, 5.0))
    for value in (0.5, 1.0, 3.0, 10.0):
        hist.observe(value)
    snap = hist.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(14.5)
    assert snap["min"] == 0.5 and snap["max"] == 10.0
    # le uses <= semantics and counts are cumulative, ending at +Inf.
    assert [(b["le"], b["count"]) for b in snap["buckets"]] == [
        (1.0, 2), (2.0, 2), (5.0, 3), ("+Inf", 4),
    ]


def test_histogram_quantiles_clamped_to_observed_range():
    hist = Histogram(buckets=(0.01, 0.1, 1.0))
    assert hist.quantile(0.5) is None
    for value in (0.02, 0.03, 0.04, 0.05):
        hist.observe(value)
    p50 = hist.quantile(0.5)
    assert 0.02 <= p50 <= 0.1
    # The top quantile never exceeds the observed maximum, even though the
    # nearest-rank bucket bound (0.1) does.
    assert hist.quantile(1.0) == 0.05
    hist.observe(50.0)  # overflow bucket
    assert hist.quantile(1.0) == 50.0


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram(buckets=(1.0, 1.0, 2.0))
    with pytest.raises(ValueError):
        Histogram(buckets=())


def test_histogram_merge_requires_identical_bounds():
    left, right = Histogram(buckets=(1.0, 2.0)), Histogram(buckets=(1.0, 2.0))
    left.observe(0.5)
    right.observe(1.5)
    left.merge(right)
    assert left.count == 2 and left.sum == pytest.approx(2.0)
    with pytest.raises(ValueError):
        left.merge(Histogram(buckets=(1.0, 3.0)))


def test_counter_and_gauge():
    counter = Counter()
    counter.inc()
    counter.inc(2.5)
    assert counter.value == pytest.approx(3.5)
    with pytest.raises(ValueError):
        counter.inc(-1)
    gauge = Gauge()
    gauge.set(5)
    gauge.dec(2)
    assert gauge.value == pytest.approx(3.0)


# --------------------------------------------------------------------------- #
# Registry and Prometheus rendering
# --------------------------------------------------------------------------- #
def test_escape_label_value():
    assert escape_label_value('we"ird\\\n') == 'we\\"ird\\\\\\n'
    assert escape_label_value("plain") == "plain"


def test_registry_renders_escaped_labels_without_raw_newlines():
    registry = MetricsRegistry()
    registry.counter(
        "requests_total", labels={"graph": 'we"ird\\\nname'}
    ).inc()
    text = registry.render_prometheus(prefix="kplex")
    assert 'graph="we\\"ird\\\\\\nname"' in text
    # A hostile label value must never break the line-oriented format.
    for line in text.splitlines():
        if line.startswith("kplex_requests_total{"):
            assert line.endswith(" 1")


def test_registry_kind_and_bucket_conflicts():
    registry = MetricsRegistry()
    registry.counter("thing")
    with pytest.raises(ValueError):
        registry.gauge("thing")
    registry.histogram("lat", buckets=(1.0, 2.0))
    with pytest.raises(ValueError):
        registry.histogram("lat", buckets=(1.0, 3.0))


def test_registry_histogram_render_has_bucket_sum_count():
    registry = MetricsRegistry()
    registry.histogram("lat", labels={"route": "/x"}, buckets=(0.1, 1.0)).observe(0.5)
    text = registry.render_prometheus(prefix="kplex")
    assert '# TYPE kplex_lat histogram' in text
    assert 'kplex_lat_bucket{le="0.1",route="/x"} 0' in text
    assert 'kplex_lat_bucket{le="1",route="/x"} 1' in text
    assert 'kplex_lat_bucket{le="+Inf",route="/x"} 1' in text
    assert 'kplex_lat_sum{route="/x"}' in text
    assert 'kplex_lat_count{route="/x"} 1' in text


# --------------------------------------------------------------------------- #
# Traces and spans
# --------------------------------------------------------------------------- #
def test_trace_tree_nests_by_parent():
    trace = Trace(request_id="t1")
    root = trace.span("root")
    child = trace.span("child", parent=root)
    trace.span("grandchild", parent=child)
    trace.finish()
    tree = trace.tree()
    assert len(tree) == 1 and tree[0]["name"] == "root"
    assert tree[0]["children"][0]["name"] == "child"
    assert tree[0]["children"][0]["children"][0]["name"] == "grandchild"


def test_trace_span_cap_returns_unrecorded_spans():
    trace = Trace(request_id="t2", max_spans=2)
    first = trace.span("a")
    trace.span("b", parent=first)
    overflow = trace.span("c", parent=first)
    assert overflow.recorded is False
    overflow.set(x=1).finish()  # still usable, just not stored
    assert trace.dropped_spans == 1
    assert len(trace.spans) == 2


def test_span_context_manager_is_noop_without_trace():
    assert current_trace() is None
    with span("orphan") as item:
        assert item.recorded is False
        item.set(anything="goes")
    assert start_span("orphan2") is None


def test_activate_and_span_nest_under_trace():
    trace = Trace(request_id="t3")
    root = trace.span("root")
    with activate(root):
        assert current_trace() is trace
        with span("inner", tag=1) as inner:
            assert inner.recorded is True
            assert current_span() is inner
        assert current_span() is root
    assert current_span() is None
    names = [s.name for s in trace.spans]
    assert names == ["root", "inner"]
    assert trace.spans[1].parent_id == root.span_id


def test_attach_span_record_stitches_wall_clock_child():
    record = span_record("worker", 100.0, 100.5, seed=7)
    assert record["pid"] > 0
    trace = Trace(request_id="t4")
    root = trace.span("root")
    attached = attach_span_record(record, parent=root)
    assert attached.parent_id == root.span_id
    assert attached.duration_ms == pytest.approx(500.0)
    assert attached.attributes["seed"] == 7
    assert attach_span_record(record, parent=None) is None


def test_trace_recorder_evicts_oldest_and_filters():
    recorder = TraceRecorder(capacity=2)
    for name in ("a", "b", "c"):
        trace = Trace(request_id=name)
        trace.span(name).finish()
        recorder.record(trace)
    assert len(recorder) == 2
    assert recorder.get("a") is None
    assert recorder.get("c").request_id == "c"
    listed = recorder.list()
    assert [t.request_id for t in listed] == ["c", "b"]  # newest first
    assert recorder.list(min_ms=1e9) == []
    assert len(recorder.list(limit=1)) == 1


# --------------------------------------------------------------------------- #
# Structured events
# --------------------------------------------------------------------------- #
def test_log_event_emits_json_with_request_id():
    stream = io.StringIO()
    handler = configure_event_logging(stream=stream, level=logging.INFO)
    try:
        trace = Trace(request_id="evt-1")
        root = trace.span("root")
        with activate(root):
            log_event("unit_test_event", detail=42, dropped=None)
        payload = json.loads(stream.getvalue().strip().splitlines()[-1])
        assert payload["event"] == "unit_test_event"
        assert payload["request_id"] == "evt-1"
        assert payload["detail"] == 42
        assert "dropped" not in payload  # None-valued fields are omitted
        assert payload["level"] == "info"
    finally:
        remove_event_handler(handler)


# --------------------------------------------------------------------------- #
# Bounded per-seed statistics
# --------------------------------------------------------------------------- #
def test_per_seed_branch_calls_capped_to_top_n():
    stats = SearchStatistics()
    for seed in range(1000):
        stats.record_seed(seed, subgraph_size=4)
        for _ in range(seed % 97 + 1):
            stats.record_branch(seed)
    assert len(stats.per_seed_branch_calls) <= _PER_SEED_PRUNE_AT
    assert stats.per_seed_dropped > 0
    top = stats.top_seed_branch_calls(5)
    counts = list(top.values())
    assert len(top) == 5
    assert counts == sorted(counts, reverse=True)
    assert counts[0] == 97  # the heaviest seeds survive the pruning


def test_per_seed_cap_survives_merge():
    left, right = SearchStatistics(), SearchStatistics()
    for seed in range(600):
        left.record_branch(seed)
        right.record_branch(seed + 600)
    dropped_before = left.per_seed_dropped + right.per_seed_dropped
    left.merge(right)
    assert len(left.per_seed_branch_calls) <= _PER_SEED_PRUNE_AT
    assert left.per_seed_dropped >= dropped_before


def test_small_per_seed_dicts_are_untouched():
    stats = SearchStatistics()
    for seed in range(10):
        stats.record_branch(seed)
    assert len(stats.per_seed_branch_calls) == 10
    assert stats.per_seed_dropped == 0
    assert stats.top_seed_branch_calls(limit=PER_SEED_TOP_N)


# --------------------------------------------------------------------------- #
# Propagation across execution boundaries
# --------------------------------------------------------------------------- #
def _assert_well_formed(trace):
    """One root, every parent_id resolves, no span borrowed from elsewhere."""
    ids = {s.span_id for s in trace.spans}
    roots = [s for s in trace.spans if s.parent_id is None]
    assert len(roots) == 1, [s.name for s in roots]
    for item in trace.spans:
        assert item.trace is trace
        if item.parent_id is not None:
            assert item.parent_id in ids


def test_request_id_survives_service_worker_thread():
    service = KPlexService(config=ServiceConfig(max_workers=2))
    try:
        service.catalog.register("toy", Graph.from_edges(EDGES))
        trace = Trace(request_id="svc-1")
        root = trace.span("root")
        with activate(root):
            assert current_trace().request_id == "svc-1"
            future = service.submit(service.request("toy", 2, 3))
            response = future.result(timeout=30)
        trace.finish()
        assert len(response.kplexes) == 1
        names = [s.name for s in trace.spans]
        for expected in ("execute", "enumerate", "preprocess", "search"):
            assert expected in names, names
        # Bookkeeping steps ride as attributes, not spans (hot-path economy).
        execute = next(s for s in trace.spans if s.name == "execute")
        assert execute.attributes["queue_wait_ms"] >= 0.0
        assert execute.attributes["cache_hit"] is False
        assert root.attributes["outstanding"] >= 1
        _assert_well_formed(trace)
    finally:
        service.close()


def test_process_pool_worker_spans_stitch_into_parent_trace():
    graph = generators.ring_of_cliques(num_cliques=3, clique_size=4)
    trace = Trace(request_id="proc-1")
    root = trace.span("root")
    with activate(root):
        result = parallel_enumerate_maximal_kplexes(
            graph, 2, 4, ParallelConfig(num_workers=2, use_processes=True)
        )
    trace.finish()
    assert result
    workers = [s for s in trace.spans if s.name == "mine_seed"]
    assert workers, [s.name for s in trace.spans]
    search = next(s for s in trace.spans if s.name == "search")
    for item in workers:
        assert item.parent_id == search.span_id
        assert item.attributes["pid"] > 0
        assert item.end_time is not None
    _assert_well_formed(trace)


def test_span_trees_stay_well_formed_under_thread_hammering():
    service = KPlexService(config=ServiceConfig(max_workers=4))
    traces = {}
    errors = []
    try:
        service.catalog.register("toy", Graph.from_edges(EDGES))
        barrier = threading.Barrier(6)

        def hammer(index):
            try:
                trace = Trace(request_id=f"hammer-{index}")
                root = trace.span("root")
                barrier.wait(timeout=10)
                with activate(root):
                    future = service.submit(service.request("toy", 2, 3))
                    future.result(timeout=30)
                trace.finish()
                traces[index] = trace
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert len(traces) == 6
        for index, trace in traces.items():
            assert trace.request_id == f"hammer-{index}"
            _assert_well_formed(trace)
            assert "execute" in [s.name for s in trace.spans]
    finally:
        service.close()


def test_trace_survives_worker_kill_with_pool_recovery():
    graph = generators.ring_of_cliques(num_cliques=3, clique_size=4)
    expected = parallel_enumerate_maximal_kplexes(
        graph, 2, 4, ParallelConfig(num_workers=2, use_processes=False)
    )
    fault_injector().configure("worker_kill:1")
    try:
        trace = Trace(request_id="kill-1")
        root = trace.span("root")
        with activate(root):
            survived = parallel_enumerate_maximal_kplexes(
                graph, 2, 4, ParallelConfig(num_workers=2, use_processes=True)
            )
    finally:
        fault_injector().clear()
    trace.finish()
    assert vertex_sets(survived) == vertex_sets(expected)
    _assert_well_formed(trace)
    search = next(s for s in trace.spans if s.name == "search")
    assert search.attributes.get("pool_recoveries", 0) >= 1


# --------------------------------------------------------------------------- #
# HTTP: X-Request-Id passthrough and the /v1/trace routes
# --------------------------------------------------------------------------- #
@pytest.fixture()
def served():
    service = KPlexService(config=ServiceConfig(max_workers=2))
    server = start_server(service, port=0)
    client = ServiceClient(server.url)
    client.wait_ready()
    try:
        yield service, server, client
    finally:
        server.drain()


def test_http_trace_roundtrip(served):
    _service, _server, client = served
    client.register("toy", edges=EDGES)
    client.solve("toy", k=2, q=3)
    request_id = client.last_request_id
    assert request_id

    payload = client.trace(request_id)
    assert payload["request_id"] == request_id
    names = [s["name"] for s in payload["spans"]]
    for expected in ("http", "execute", "preprocess", "search"):
        assert expected in names, names
    assert payload["tree"][0]["name"] == "http"
    assert payload["tree"][0]["attributes"]["status"] == 200

    listing = client.traces(limit=10)
    assert listing["count"] >= 1
    assert any(row["request_id"] == request_id for row in listing["traces"])


def test_http_trace_unknown_id_is_404(served):
    _service, _server, client = served
    with pytest.raises(RemoteServiceError) as info:
        client.trace("nope-never-seen")
    assert info.value.status == 404


def test_http_trace_rejects_bad_query(served):
    _service, _server, client = served
    with pytest.raises(RemoteServiceError) as info:
        client.traces(min_ms="wat")
    assert info.value.status == 400


def test_http_job_trace_links_submitting_request(served):
    _service, _server, client = served
    client.register("toy", edges=EDGES)
    job = client.submit_job("toy", k=2, q=3)
    client.wait_job(job["id"])
    assert job["request_id"] == job["id"]

    payload = client.trace(job["id"])
    root = payload["tree"][0]
    assert root["name"] == "job"
    assert root["attributes"]["job_id"] == job["id"]
    # The HTTP request that submitted the job is linked by id.
    parent = root["attributes"]["parent_request_id"]
    submit_trace = client.trace(parent)
    assert submit_trace["tree"][0]["attributes"]["path"] == "/v1/jobs"
    names = [s["name"] for s in payload["spans"]]
    assert "search" in names and "preprocess" in names


def test_http_prometheus_carries_histogram_series(served):
    _service, _server, client = served
    client.register("toy", edges=EDGES)
    client.solve("toy", k=2, q=3)
    text = client.metrics(fmt="prometheus")
    assert "kplex_request_latency_seconds_bucket{" in text
    assert "kplex_request_latency_seconds_sum" in text
    assert "kplex_request_latency_seconds_count" in text
    assert 'kplex_http_requests_total{route="/v1/solve",status="200"} 1' in text


def test_prometheus_escapes_hostile_graph_names():
    service = KPlexService(config=ServiceConfig(max_workers=1))
    hostile = 'we"ird\\\nname'
    try:
        service.catalog.register(hostile, Graph.from_edges(EDGES))
        future = service.submit(service.request(hostile, 2, 3))
        future.result(timeout=30)
        text = service.metrics_prometheus_text()
        assert 'graph="we\\"ird\\\\\\nname"' in text
        for line in text.splitlines():
            assert "\n" not in line  # splitlines guarantees it; belt and braces
            if "graph_requests_total" in line and "#" not in line:
                assert line.endswith(" 1")
    finally:
        service.close()


def test_access_log_format_json(served_factory=None):
    lines = []
    service = KPlexService(config=ServiceConfig(max_workers=1))
    server = start_server(
        service,
        port=0,
        logger=lines.append,
        access_log_format="json",
        slow_request_threshold=0.0,
    )
    stream = io.StringIO()
    handler = configure_event_logging(stream=stream, level=logging.WARNING)
    client = ServiceClient(server.url)
    try:
        client.wait_ready()
        client.register("toy", edges=EDGES)
        client.solve("toy", k=2, q=3)
        solve_id = client.last_request_id
        solve_lines = [
            json.loads(line) for line in lines
            if '"path":"/v1/solve"' in line.replace(" ", "")
        ]
        assert solve_lines, lines
        record = solve_lines[-1]
        assert record["method"] == "POST"
        assert record["status"] == 200
        assert record["request_id"] == solve_id
        assert record["duration_ms"] > 0
        # Threshold 0 marks everything slow: the WARNING event carries the
        # span tree for offline inspection.
        events = [json.loads(line) for line in stream.getvalue().splitlines()]
        slow = [e for e in events if e["event"] == "slow_request"]
        assert any(e["request_id"] == solve_id for e in slow)
        tree = next(e for e in slow if e["request_id"] == solve_id)["spans"]
        assert tree[0]["name"] == "http"
    finally:
        remove_event_handler(handler)
        server.drain()
