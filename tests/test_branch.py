"""Unit tests for the branch-and-bound search engine (Algorithm 3)."""

from collections import deque

from repro.core.branch import BranchSearcher, BranchState
from repro.core.config import EnumerationConfig
from repro.core.kplex import is_kplex, is_maximal_kplex
from repro.core.seeds import SubTask, build_seed_context, iter_seed_contexts, iter_subtasks
from repro.core.stats import SearchStatistics
from repro.graph import generators
from repro.graph.core_decomposition import core_decomposition


def _mine_graph(graph, k, q, config):
    """Run the full decomposition + branch search, returning result vertex sets."""
    stats = SearchStatistics()
    results = set()
    for _seed, context in iter_seed_contexts(graph, k, q, config, stats):
        if context is None:
            continue
        searcher = BranchSearcher(
            context,
            k,
            q,
            config,
            stats,
            on_result=lambda mask, ctx=context: results.add(
                frozenset(ctx.subgraph.parents_of_mask(mask))
            ),
        )
        for task in iter_subtasks(context, k, q, config, stats):
            searcher.run_subtask(task)
    return results, stats


def test_results_are_maximal_kplexes_of_required_size():
    graph = generators.relaxed_caveman(3, 7, 0.25, seed=3)
    k, q = 2, 5
    results, stats = _mine_graph(graph, k, q, EnumerationConfig.ours())
    assert results
    assert stats.outputs == len(results)
    for members in results:
        assert len(members) >= q
        assert is_kplex(graph, members, k)
        assert is_maximal_kplex(graph, members, k)


def test_no_duplicate_outputs():
    graph = generators.erdos_renyi(18, 0.45, seed=10)
    k, q = 2, 4
    stats = SearchStatistics()
    config = EnumerationConfig.ours()
    outputs = []
    for _seed, context in iter_seed_contexts(graph, k, q, config, stats):
        if context is None:
            continue
        searcher = BranchSearcher(
            context,
            k,
            q,
            config,
            stats,
            on_result=lambda mask, ctx=context: outputs.append(
                frozenset(ctx.subgraph.parents_of_mask(mask))
            ),
        )
        for task in iter_subtasks(context, k, q, config, stats):
            searcher.run_subtask(task)
    assert len(outputs) == len(set(outputs))


def test_upper_bound_pruning_counted_and_harmless():
    graph = generators.relaxed_caveman(3, 8, 0.3, seed=4)
    k, q = 2, 7
    with_ub, stats_with = _mine_graph(graph, k, q, EnumerationConfig.ours())
    without_ub, stats_without = _mine_graph(graph, k, q, EnumerationConfig.without_upper_bound())
    assert with_ub == without_ub
    assert stats_with.branch_calls <= stats_without.branch_calls


def test_faplexen_branching_matches_default():
    graph = generators.erdos_renyi(16, 0.5, seed=11)
    k, q = 3, 5
    default, _ = _mine_graph(graph, k, q, EnumerationConfig.ours())
    faplexen, _ = _mine_graph(graph, k, q, EnumerationConfig.ours_p())
    assert default == faplexen


def test_timeout_spills_pending_states_and_preserves_results():
    # A dense random graph guarantees deep recursion, so the zero timeout
    # must spill continuation states.
    graph = generators.erdos_renyi(18, 0.55, seed=6)
    k, q = 3, 5
    config = EnumerationConfig.ours()

    baseline, _ = _mine_graph(graph, k, q, config)

    stats = SearchStatistics()
    results = set()
    spilled = 0
    for _seed, context in iter_seed_contexts(graph, k, q, config, stats):
        if context is None:
            continue
        pending = deque()
        searcher = BranchSearcher(
            context,
            k,
            q,
            config,
            stats,
            on_result=lambda mask, ctx=context: results.add(
                frozenset(ctx.subgraph.parents_of_mask(mask))
            ),
            timeout=0.0,  # force a split at every recursion step
            task_sink=pending.append,
        )
        for task in iter_subtasks(context, k, q, config, stats):
            searcher.run_subtask(task)
            while pending:
                spilled += 1
                searcher.run_state(pending.popleft())
    assert results == baseline
    assert spilled > 0


def test_branch_state_is_frozen_record():
    state = BranchState(p_mask=1, c_mask=6, x_mask=0, x_external_mask=0, minimum_degree=3)
    assert state.p_mask == 1
    assert state.minimum_degree == 3


def test_single_subtask_run_on_explicit_context():
    graph = generators.complete_graph(6)
    decomposition = core_decomposition(graph)
    position = decomposition.position()
    config = EnumerationConfig.ours()
    stats = SearchStatistics()
    seed = decomposition.order[0]
    context = build_seed_context(graph, position, seed, 1, 3, config, stats)
    assert context is not None
    results = []
    searcher = BranchSearcher(
        context, 1, 3, config, stats,
        on_result=lambda mask: results.append(context.subgraph.parents_of_mask(mask)),
    )
    searcher.run_subtask(
        SubTask(
            p_mask=1 << context.seed_local,
            c_mask=context.candidate_mask,
            x_mask=context.two_hop_mask,
            x_external_mask=(1 << len(context.external_vertices)) - 1,
        )
    )
    # The complete graph has exactly one maximal clique: all six vertices.
    assert len(results) == 1
    assert sorted(results[0]) == sorted(graph.vertices())


def test_statistics_track_pruning_counters():
    graph = generators.relaxed_caveman(4, 7, 0.3, seed=9)
    _, stats = _mine_graph(graph, 2, 6, EnumerationConfig.ours())
    assert stats.branch_calls > 0
    assert stats.seeds > 0
    assert stats.subtasks >= stats.seeds
