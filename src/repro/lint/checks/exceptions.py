"""Exception-hygiene check: broad handlers that swallow silently."""

from __future__ import annotations

import ast
from typing import Iterator

from ..finding import Finding
from ..model import Project, SourceModule
from ..registry import Check, register_check

__all__ = ["SwallowedException"]

#: A handler body that calls anything matching these fragments is judged
#: to have *reported* the error, which is enough to not be a swallow.
_REPORTING_FRAGMENTS = (
    "log", "warn", "error", "print", "event", "fail", "record", "report",
)


@register_check("swallowed-exception")
class SwallowedException(Check):
    """``except Exception:`` (or bare ``except:``) that hides the error.

    Flagged when a broad handler neither re-raises, nor binds the
    exception (``as exc``), nor reports it (logging/print/event call) —
    the error vanishes and the fallback path runs with no trace of *why*.
    A body that is only ``pass``/``continue`` is flagged even with
    ``as exc``.  Narrow the exception type, or report before falling
    back.
    """

    description = "broad except handler that neither re-raises, binds nor logs"

    def run(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            for node in module.walk():
                if isinstance(node, ast.ExceptHandler):
                    yield from self._check_handler(module, node)

    def _check_handler(
        self, module: SourceModule, handler: ast.ExceptHandler
    ) -> Iterator[Finding]:
        broad = self._broad_type(module, handler)
        if broad is None:
            return
        only_noop = all(
            isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in handler.body
        )
        if only_noop:
            yield self._finding(
                module,
                handler,
                broad,
                f"'except {broad}' whose body is only pass/continue silently "
                f"drops the error; narrow the exception type or report it",
            )
            return
        if handler.name is not None:
            return  # bound via ``as exc``: the handler can inspect/report it
        if self._reraises(handler) or self._reports(handler):
            return
        yield self._finding(
            module,
            handler,
            broad,
            f"'except {broad}' swallows the error without re-raising, binding "
            f"or reporting it: the fallback runs with no trace of what failed; "
            f"narrow the type or log before falling back",
        )

    @staticmethod
    def _broad_type(module: SourceModule, handler: ast.ExceptHandler):
        if handler.type is None:
            return "<bare>"
        names = []
        types = (
            handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
        )
        for expr in types:
            dotted = module.resolve_expr(expr) or ""
            names.append(dotted.rsplit(".", 1)[-1])
        for name in names:
            if name in ("Exception", "BaseException"):
                return name
        return None

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(node, ast.Raise) for node in ast.walk(handler))

    @staticmethod
    def _reports(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else ""
            )
            if any(fragment in name.lower() for fragment in _REPORTING_FRAGMENTS):
                return True
        return False

    def _finding(
        self, module: SourceModule, handler: ast.ExceptHandler, broad: str, message: str
    ) -> Finding:
        return Finding(
            file=module.relpath,
            line=handler.lineno,
            col=handler.col_offset,
            check=self.name,
            message=message,
            symbol=module.enclosing_function(handler),
            subject=f"except-{broad}",
        )
