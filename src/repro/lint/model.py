"""Source model: parsed modules with import, scope and lock tracking.

The checks in :mod:`repro.lint.checks` do not walk raw ASTs.  They consume
a :class:`Project` of :class:`SourceModule` objects that already carry the
facts most concurrency/contract checks need:

* **import aliases** — every local name mapped to a dotted origin, so a
  check matches ``sleep(...)`` against ``time.sleep`` no matter how it was
  imported (``resolve_call``);
* **lock ownership** — per class, the instance attributes bound to
  ``threading.Lock/RLock/Condition/Semaphore`` factories (conditions are
  canonicalised onto the lock they wrap), plus module-level locks;
* **held-lock regions** — for every AST node, the set of lock tokens held
  at that point, derived from ``with self._lock:`` nesting.  Functions
  whose name ends in ``_locked`` are assumed (by this repository's naming
  convention) to run with a lock already held;
* **acquisition records** — every ``with <lock>:`` entry with the locks
  held at that moment, which is exactly the edge list of the lock-order
  graph;
* **attribute access sites** — every ``self.X`` read/write in a
  lock-owning class, tagged with the enclosing function and held locks
  (the input of the unlocked-shared-write race detector);
* **inline suppressions** — ``# repro-lint: disable=<check>[,<check>]``
  on a finding's line (or on a standalone comment line directly above it)
  marks matching findings as suppressed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ASSUMED_LOCK",
    "AccessSite",
    "Acquisition",
    "ClassModel",
    "Project",
    "SourceModule",
    "build_project",
    "build_project_from_sources",
    "collect_files",
]

#: Call suffixes recognised as lock factories, mapped to the lock kind.
_LOCK_FACTORIES = {
    "threading.Lock": "Lock",
    "threading.RLock": "RLock",
    "threading.Condition": "Condition",
    "threading.Semaphore": "Semaphore",
    "threading.BoundedSemaphore": "Semaphore",
    "multiprocessing.Lock": "Lock",
    "multiprocessing.RLock": "RLock",
}

#: Token standing for "some owned lock" inside ``*_locked`` helpers.
ASSUMED_LOCK = "<assumed>"

#: Functions whose ``self.X = ...`` writes are construction, not sharing.
_CONSTRUCTOR_NAMES = frozenset({"__init__", "__new__", "__post_init__", "__init_subclass__"})

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclass
class AccessSite:
    """One ``self.X`` access inside a lock-owning class."""

    attr: str
    node: ast.AST
    function: str  # enclosing function qualname, e.g. "JobManager.close"
    func_name: str  # bare name of the enclosing function
    is_write: bool
    held: FrozenSet[str]

    @property
    def locked(self) -> bool:
        return bool(self.held)


@dataclass
class Acquisition:
    """One ``with <lock>:`` entry: the acquired token plus held context."""

    token: str
    kind: str  # lock kind ("Lock", "RLock", ...) or "?" for module locks
    node: ast.AST
    function: str
    held: FrozenSet[str]


@dataclass
class ClassModel:
    """Lock-ownership facts of one class definition."""

    name: str
    node: ast.ClassDef
    lock_attrs: Dict[str, str] = field(default_factory=dict)  # attr -> kind
    #: Condition attrs wrapping another owned lock: alias -> canonical attr.
    lock_aliases: Dict[str, str] = field(default_factory=dict)
    access_sites: List[AccessSite] = field(default_factory=list)

    def canonical(self, attr: str) -> str:
        return self.lock_aliases.get(attr, attr)

    def owns_locks(self) -> bool:
        return bool(self.lock_attrs)

    def lock_kind(self, attr: str) -> str:
        return self.lock_attrs.get(self.canonical(attr), "?")


class SourceModule:
    """One parsed python file plus the derived facts (see module docstring)."""

    def __init__(self, relpath: str, text: str) -> None:
        self.relpath = relpath.replace("\\", "/")
        self.text = text
        self.lines = text.splitlines()
        self.modname = self._modname(self.relpath)
        self.syntax_error: Optional[SyntaxError] = None
        self.tree: Optional[ast.Module] = None
        self.parents: Dict[ast.AST, ast.AST] = {}
        self.imports: Dict[str, str] = {}
        self.module_locks: Dict[str, str] = {}  # name -> kind
        self.classes: List[ClassModel] = []
        self.held: Dict[ast.AST, FrozenSet[str]] = {}
        self.enclosing: Dict[ast.AST, str] = {}
        self.acquisitions: List[Acquisition] = []
        self.suppressions: Dict[int, Set[str]] = _parse_suppressions(self.lines)
        try:
            self.tree = ast.parse(text)
        except SyntaxError as exc:
            self.syntax_error = exc
            return
        self._index_parents()
        self._index_imports()
        self._class_by_node = self._index_classes()
        self._walk_scopes()
        self._collect_access_sites()

    # ------------------------------------------------------------------ #
    # Derivation passes
    # ------------------------------------------------------------------ #
    @staticmethod
    def _modname(relpath: str) -> str:
        parts = [part for part in relpath.split("/") if part not in ("", ".")]
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][: -len(".py")]
        return ".".join(parts)

    def _index_parents(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def _index_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                prefix = "." * node.level + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{prefix}.{alias.name}" if prefix else alias.name

    def _index_classes(self) -> Dict[ast.ClassDef, ClassModel]:
        by_node: Dict[ast.ClassDef, ClassModel] = {}
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            model = ClassModel(name=node.name, node=node)
            for stmt in ast.walk(node):
                if not isinstance(stmt, ast.Assign) or not isinstance(stmt.value, ast.Call):
                    continue
                kind = self._lock_factory_kind(stmt.value)
                if kind is None:
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        model.lock_attrs[target.attr] = kind
                        if kind == "Condition" and stmt.value.args:
                            wrapped = stmt.value.args[0]
                            if (
                                isinstance(wrapped, ast.Attribute)
                                and isinstance(wrapped.value, ast.Name)
                                and wrapped.value.id == "self"
                            ):
                                model.lock_aliases[target.attr] = wrapped.attr
            by_node[node] = model
            self.classes.append(model)
        # Module-level locks: NAME = threading.Lock() at any module position.
        for stmt in ast.walk(self.tree):
            if not isinstance(stmt, ast.Assign) or not isinstance(stmt.value, ast.Call):
                continue
            kind = self._lock_factory_kind(stmt.value)
            if kind is None:
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    enclosing_class = self._nearest(stmt, ast.ClassDef)
                    enclosing_func = self._nearest(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    if enclosing_class is None and enclosing_func is None:
                        self.module_locks[target.id] = kind
        return by_node

    def _lock_factory_kind(self, call: ast.Call) -> Optional[str]:
        name = self.resolve_expr(call.func)
        if name is None:
            return None
        for suffix, kind in _LOCK_FACTORIES.items():
            if name == suffix or name.endswith("." + suffix):
                return kind
            # ``from threading import Lock`` resolves to "threading.Lock"
            # already; a bare local name that resolves to just "Lock" et al
            # is accepted too (fixtures, vendored shims).
            if name == suffix.split(".")[-1]:
                return kind
        return None

    def _nearest(self, node: ast.AST, types) -> Optional[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, types):
                return current
            current = self.parents.get(current)
        return None

    # -------------------- scope / held-lock walk ----------------------- #
    def _walk_scopes(self) -> None:
        def lock_token(expr: ast.expr, cls: Optional[ClassModel]) -> Optional[Tuple[str, str]]:
            if (
                cls is not None
                and isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in cls.lock_attrs
            ):
                canonical = cls.canonical(expr.attr)
                return (
                    f"class::{cls.name}::{canonical}",
                    cls.lock_attrs.get(canonical, cls.lock_attrs[expr.attr]),
                )
            if isinstance(expr, ast.Name) and expr.id in self.module_locks:
                return (f"mod::{self.modname}::{expr.id}", self.module_locks[expr.id])
            return None

        def visit(
            node: ast.AST,
            held: FrozenSet[str],
            cls: Optional[ClassModel],
            func_stack: Tuple[str, ...],
        ) -> None:
            self.held[node] = held
            self.enclosing[node] = ".".join(func_stack)
            if isinstance(node, ast.ClassDef):
                model = self._class_by_node.get(node)
                for child in ast.iter_child_nodes(node):
                    visit(child, frozenset(), model, func_stack + (node.name,))
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = (
                    frozenset({ASSUMED_LOCK})
                    if node.name.endswith("_locked")
                    else frozenset()
                )
                for child in ast.iter_child_nodes(node):
                    visit(child, inner, cls, func_stack + (node.name,))
                return
            if isinstance(node, ast.Lambda):
                for child in ast.iter_child_nodes(node):
                    visit(child, frozenset(), cls, func_stack + ("<lambda>",))
                return
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired: Set[str] = set(held)
                for item in node.items:
                    token = lock_token(item.context_expr, cls)
                    visit(item.context_expr, held, cls, func_stack)
                    if item.optional_vars is not None:
                        visit(item.optional_vars, held, cls, func_stack)
                    if token is not None:
                        self.acquisitions.append(
                            Acquisition(
                                token=token[0],
                                kind=token[1],
                                node=item.context_expr,
                                function=".".join(func_stack),
                                held=frozenset(acquired),
                            )
                        )
                        acquired.add(token[0])
                body_held = frozenset(acquired)
                for stmt in node.body:
                    visit(stmt, body_held, cls, func_stack)
                return
            for child in ast.iter_child_nodes(node):
                visit(child, held, cls, func_stack)

        for stmt in self.tree.body:
            visit(stmt, frozenset(), None, ())

    def _collect_access_sites(self) -> None:
        for cls in self.classes:
            if not cls.owns_locks():
                continue
            for node in ast.walk(cls.node):
                if not (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    continue
                attr = node.attr
                if attr in cls.lock_attrs or attr.startswith("__"):
                    continue
                # Skip accesses that belong to a *nested* class definition.
                owner = self._nearest(node, ast.ClassDef)
                if owner is not cls.node:
                    continue
                qualname = self.enclosing.get(node, "")
                func_name = qualname.rsplit(".", 1)[-1] if qualname else ""
                cls.access_sites.append(
                    AccessSite(
                        attr=attr,
                        node=node,
                        function=qualname,
                        func_name=func_name,
                        is_write=isinstance(node.ctx, (ast.Store, ast.Del)),
                        held=self.held.get(node, frozenset()),
                    )
                )

    # ------------------------------------------------------------------ #
    # Query helpers for checks
    # ------------------------------------------------------------------ #
    def resolve_expr(self, expr: ast.expr) -> Optional[str]:
        """Dotted origin of a name/attribute chain, or ``None``.

        ``sleep`` imported via ``from time import sleep`` resolves to
        ``time.sleep``; ``forward`` from ``from .proxy import forward``
        resolves to ``.proxy.forward`` (leading dots preserved so suffix
        matching still works).  Chains rooted in calls or ``self`` do not
        resolve.
        """
        if isinstance(expr, ast.Name):
            return self.imports.get(expr.id, expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.resolve_expr(expr.value)
            if base is None:
                return None
            return f"{base}.{expr.attr}"
        return None

    def call_name(self, call: ast.Call) -> Optional[str]:
        return self.resolve_expr(call.func)

    def walk(self) -> Iterable[ast.AST]:
        if self.tree is None:
            return ()
        return ast.walk(self.tree)

    def held_at(self, node: ast.AST) -> FrozenSet[str]:
        return self.held.get(node, frozenset())

    def enclosing_function(self, node: ast.AST) -> str:
        return self.enclosing.get(node, "")

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def in_finally(self, node: ast.AST) -> bool:
        """``True`` when ``node`` sits inside some ``finally:`` suite."""
        current = node
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.Try):
                for stmt in ancestor.finalbody:
                    if current is stmt or _contains(stmt, current):
                        return True
            current = ancestor
        return False

    def is_suppressed(self, line: int, check: str) -> bool:
        names = self.suppressions.get(line)
        if not names:
            return False
        return check in names or "all" in names


def _contains(root: ast.AST, target: ast.AST) -> bool:
    for node in ast.walk(root):
        if node is target:
            return True
    return False


def _parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    suppressions: Dict[int, Set[str]] = {}
    pending: Set[str] = set()
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        match = _SUPPRESS_RE.search(line)
        if match:
            names = {part.strip() for part in match.group(1).split(",") if part.strip()}
            if stripped.startswith("#"):
                pending |= names  # standalone comment: applies to next code line
            else:
                suppressions.setdefault(lineno, set()).update(names)
        elif stripped and not stripped.startswith("#"):
            if pending:
                suppressions.setdefault(lineno, set()).update(pending)
                pending = set()
    return suppressions


@dataclass
class Project:
    """Every analysed module, plus the root the relative paths hang off."""

    root: Path
    modules: List[SourceModule] = field(default_factory=list)

    def module(self, relpath: str) -> Optional[SourceModule]:
        for module in self.modules:
            if module.relpath == relpath:
                return module
        return None


# --------------------------------------------------------------------------- #
# Project construction
# --------------------------------------------------------------------------- #
def collect_files(paths: Sequence[str], root: Optional[Path] = None) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    root = root or Path.cwd()
    seen: Set[Path] = set()
    ordered: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(candidate)
    return ordered


def find_repo_root(start: Optional[Path] = None) -> Path:
    """Nearest ancestor holding ``pyproject.toml`` or ``.git`` (else cwd)."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").exists() or (candidate / ".git").exists():
            return candidate
    return current


def build_project(paths: Sequence[str], root: Optional[Path] = None) -> Project:
    """Parse every ``.py`` under ``paths`` into a :class:`Project`."""
    root = (root or find_repo_root()).resolve()
    project = Project(root=root)
    for path in collect_files(paths, root=root):
        resolved = path.resolve()
        try:
            relpath = str(resolved.relative_to(root))
        except ValueError:
            relpath = str(resolved)
        text = resolved.read_text(encoding="utf-8")
        project.modules.append(SourceModule(relpath, text))
    return project


def build_project_from_sources(sources: Dict[str, str]) -> Project:
    """Build a project straight from ``{relpath: source}`` (test fixtures)."""
    project = Project(root=Path.cwd())
    for relpath in sorted(sources):
        project.modules.append(SourceModule(relpath, sources[relpath]))
    return project
