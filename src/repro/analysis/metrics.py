"""Cohesion metrics for mined k-plexes.

The motivation of the paper is finding cohesive communities, so alongside the
raw enumeration the library reports the standard cohesion measures used when
interpreting k-plexes as communities or protein complexes: density, minimum
internal degree, diameter, conductance-style boundary ratio, and overlap
between results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from ..core.kplex import KPlex
from ..graph import Graph
from ..graph.properties import is_connected_subset, subset_density, subset_diameter


@dataclass(frozen=True)
class CohesionMetrics:
    """Cohesion summary of one vertex set."""

    size: int
    internal_edges: int
    density: float
    minimum_internal_degree: int
    diameter: int
    boundary_edges: int
    boundary_ratio: float

    def as_row(self) -> Dict[str, object]:
        """Return the metrics as a dictionary for table rendering."""
        return {
            "size": self.size,
            "internal_edges": self.internal_edges,
            "density": round(self.density, 4),
            "min_internal_degree": self.minimum_internal_degree,
            "diameter": self.diameter,
            "boundary_edges": self.boundary_edges,
            "boundary_ratio": round(self.boundary_ratio, 4),
        }


def cohesion_metrics(graph: Graph, members: Iterable[int]) -> CohesionMetrics:
    """Compute the cohesion metrics of ``members`` inside ``graph``."""
    member_set = frozenset(members)
    size = len(member_set)
    internal = 0
    boundary = 0
    minimum_degree = size
    for vertex in member_set:
        inside = sum(1 for w in graph.neighbors(vertex) if w in member_set)
        outside = graph.degree(vertex) - inside
        internal += inside
        boundary += outside
        minimum_degree = min(minimum_degree, inside)
    internal //= 2
    if size >= 2 and is_connected_subset(graph, member_set):
        diameter = subset_diameter(graph, member_set)
    else:
        diameter = 0 if size <= 1 else -1
    total_incident = 2 * internal + boundary
    ratio = boundary / total_incident if total_incident else 0.0
    return CohesionMetrics(
        size=size,
        internal_edges=internal,
        density=subset_density(graph, member_set),
        minimum_internal_degree=minimum_degree if size else 0,
        diameter=diameter,
        boundary_edges=boundary,
        boundary_ratio=ratio,
    )


def rank_by_density(graph: Graph, results: Sequence[KPlex], top: int = 10) -> List[Tuple[KPlex, CohesionMetrics]]:
    """Return the ``top`` densest results with their cohesion metrics."""
    scored = [(plex, cohesion_metrics(graph, plex.vertices)) for plex in results]
    scored.sort(key=lambda item: (-item[1].density, -item[1].size))
    return scored[:top]


def jaccard_similarity(first: FrozenSet[int], second: FrozenSet[int]) -> float:
    """Jaccard similarity of two vertex sets."""
    if not first and not second:
        return 1.0
    return len(first & second) / len(first | second)


def overlap_matrix(results: Sequence[KPlex]) -> List[List[float]]:
    """Pairwise Jaccard overlap between results (used by the community example)."""
    sets = [plex.as_set() for plex in results]
    return [
        [jaccard_similarity(first, second) for second in sets]
        for first in sets
    ]


def coverage(graph: Graph, results: Sequence[KPlex]) -> float:
    """Fraction of graph vertices covered by at least one result."""
    if graph.num_vertices == 0:
        return 0.0
    covered = set()
    for plex in results:
        covered.update(plex.vertices)
    return len(covered) / graph.num_vertices


def size_histogram(results: Sequence[KPlex]) -> Dict[int, int]:
    """Histogram ``size -> number of results of that size``."""
    histogram: Dict[int, int] = {}
    for plex in results:
        histogram[plex.size] = histogram.get(plex.size, 0) + 1
    return dict(sorted(histogram.items()))
