"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiment drivers already perform one measured run per algorithm and
    workload, so repeating them under the benchmark's default calibration
    would multiply multi-second workloads for no additional information.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
