"""repro — Efficient Enumeration of Large Maximal k-Plexes (EDBT 2025 reproduction).

Public API
----------
The most common entry points are re-exported at the package root:

* :class:`repro.Graph` — the undirected simple graph type.
* :func:`repro.enumerate_maximal_kplexes` — run the paper's algorithm (``Ours``).
* :func:`repro.count_maximal_kplexes` — count results without materialising them.
* :class:`repro.KPlexEnumerator` — configurable enumerator (ablation variants,
  baselines, statistics).
* :class:`repro.EnumerationConfig` — the knobs corresponding to the paper's
  pruning techniques and algorithm variants.
* :func:`repro.parallel_enumerate_maximal_kplexes` — task-parallel version
  (Section 6 of the paper).

Quick start
-----------
>>> from repro import Graph, enumerate_maximal_kplexes
>>> graph = Graph.from_edges([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
>>> plexes = enumerate_maximal_kplexes(graph, k=2, q=3)
>>> sorted(sorted(p.vertices) for p in plexes)
[[0, 1, 2, 3]]
"""

from .core import (
    EnumerationConfig,
    EnumerationResult,
    KPlex,
    KPlexEnumerator,
    SearchStatistics,
    best_community_for,
    count_maximal_kplexes,
    enumerate_kplexes_containing,
    enumerate_maximal_kplexes,
    is_kplex,
    is_maximal_kplex,
)
from .errors import DatasetError, FormatError, GraphError, ParameterError, ReproError
from .graph import Graph
from .parallel import ParallelConfig, parallel_enumerate_maximal_kplexes

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "KPlex",
    "KPlexEnumerator",
    "EnumerationConfig",
    "EnumerationResult",
    "SearchStatistics",
    "enumerate_maximal_kplexes",
    "count_maximal_kplexes",
    "enumerate_kplexes_containing",
    "best_community_for",
    "is_kplex",
    "is_maximal_kplex",
    "ParallelConfig",
    "parallel_enumerate_maximal_kplexes",
    "ReproError",
    "GraphError",
    "ParameterError",
    "DatasetError",
    "FormatError",
    "__version__",
]
