"""Task-parallel enumeration (Section 6 of the paper).

The parallelisation unit is the *task group* of one seed vertex: building the
seed subgraph ``G_i`` and mining all of its sub-tasks.  Seeds are processed in
stages of ``num_workers`` consecutive seeds of the degeneracy ordering, which
is the paper's scheme for keeping every worker's working set (one seed
subgraph at a time) small and cache-friendly.

Straggler elimination uses the timeout mechanism of the paper: while mining a
sub-task, once the elapsed time exceeds ``timeout_seconds`` the searcher stops
recursing and re-enqueues the pending branch states as fresh tasks.  Inside a
worker process this bounds the size of any contiguous unit of work; the
deterministic scheduler in :mod:`repro.parallel.scheduler` additionally models
the cross-worker stealing the C++ implementation performs, which a Python
process pool cannot do cheaply.

Both a process pool (true parallelism) and a thread pool (useful for tests
and for small graphs where process start-up dominates) are supported.
"""

from __future__ import annotations

import logging
import os
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.branch import BranchSearcher, BranchState
from ..core.config import EnumerationConfig
from ..core.enumerator import EnumerationResult
from ..core.kplex import KPlex, validate_parameters
from ..core.seeds import build_seed_context, iter_subtasks
from ..core.stats import SearchStatistics
from ..errors import FaultInjectedError, SharedMemoryError, WorkerCrashError
from ..graph import Graph
from ..graph.prepared import PreparedGraph, prepare
from ..graph.shared import (
    SharedGraphDescriptor,
    attach_prepared,
    shared_memory_available,
)
from ..obs import attach_span_record, span, span_record, start_span
from ..resilience import PoolSupervisor, RetryPolicy, fault_injector, resilience_stats

logger = logging.getLogger("repro.resilience")

DEFAULT_TIMEOUT_SECONDS = 1e-4  # the paper's default τ_time = 0.1 ms


@dataclass(frozen=True)
class ParallelConfig:
    """Configuration of the parallel executor.

    Attributes
    ----------
    num_workers:
        Number of worker processes/threads (defaults to the CPU count).
    timeout_seconds:
        The straggler timeout ``τ_time``; ``None`` disables task splitting.
    use_processes:
        ``True`` for a process pool (real parallelism), ``False`` for threads.
    stage_size:
        Number of seeds dispatched per stage; defaults to ``num_workers``,
        matching the paper's stage construction.
    enumeration:
        The sequential algorithm configuration each worker runs.
    shared_memory:
        Worker-transfer mode for the process pool.  ``True`` publishes the
        prepared graph's flat arrays in one shared-memory segment that every
        worker maps (per-worker transfer is a fixed-size descriptor);
        ``False`` pickles a slim prepared graph per worker; ``None`` (the
        default) uses shared memory whenever the platform supports it.
        Ignored by the thread pool, which shares the driver's objects
        directly.
    retry:
        Retry/backoff budget the pool supervisor applies to seed tasks lost
        to a worker crash or raised from a worker; ``None`` uses the
        :class:`~repro.resilience.RetryPolicy` defaults.
    max_pool_failures:
        Unattributable pool crashes tolerated before the run degrades to
        in-process serial enumeration.
    """

    num_workers: int = field(default_factory=lambda: os.cpu_count() or 1)
    timeout_seconds: Optional[float] = DEFAULT_TIMEOUT_SECONDS
    use_processes: bool = True
    stage_size: Optional[int] = None
    enumeration: EnumerationConfig = field(default_factory=EnumerationConfig.ours)
    shared_memory: Optional[bool] = None
    retry: Optional[RetryPolicy] = None
    max_pool_failures: int = 4


# --------------------------------------------------------------------------- #
# Worker-side state and functions (module level so they can be pickled)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _WorkerState:
    """Read-only state shared by the task groups of one parallel run.

    Workers receive the driver's :class:`PreparedGraph` of the (q-k)-core —
    including the CSR arrays and the finished degeneracy ordering — so no
    worker repeats the graph-level preprocessing.
    """

    prepared: PreparedGraph
    k: int
    q: int
    config: EnumerationConfig
    timeout: Optional[float]


#: Per-process state slot, filled once by the process-pool initializer.  The
#: thread-pool path never touches it (each run binds its own state via
#: functools.partial), so concurrent thread-mode runs cannot clobber each
#: other.
_PROCESS_STATE: List[Optional[_WorkerState]] = [None]


def _initialise_worker(
    prepared: PreparedGraph,
    k: int,
    q: int,
    config: EnumerationConfig,
    timeout: Optional[float],
) -> None:
    """Process-pool initializer: store the state once per worker process."""
    _PROCESS_STATE[0] = _WorkerState(prepared, k, q, config, timeout)


def _initialise_worker_shared(
    descriptor: SharedGraphDescriptor,
    k: int,
    q: int,
    config: EnumerationConfig,
    timeout: Optional[float],
) -> None:
    """Shared-memory initializer: attach the driver's published segment.

    The descriptor is a fixed-size handle; the flat graph arrays are mapped
    from the one segment the driver created instead of being unpickled per
    worker.  The mapping stays open for the worker's lifetime — only the
    driver unlinks.
    """
    _PROCESS_STATE[0] = _WorkerState(attach_prepared(descriptor), k, q, config, timeout)


def _mine_seed(seed_vertex: int) -> Tuple[List[Tuple[int, ...]], Dict[str, float]]:
    """Process-pool entry point: mine one seed with the per-process state."""
    state = _PROCESS_STATE[0]
    assert state is not None, "worker process was not initialised"
    return _mine_seed_with_state(state, seed_vertex)


def _mine_seed_with_state(
    state: _WorkerState, seed_vertex: int
) -> Tuple[List[Tuple[int, ...]], Dict[str, float]]:
    """Mine the whole task group of one seed vertex inside a worker.

    The returned stats dict additionally carries a ``"_span"`` record —
    wall-clock start/end plus the worker pid — that the driver stitches
    into the request trace.  Workers cannot share the driver's contextvars,
    so the span rides the existing result channel; ``_stats_from_dict``
    ignores the key, keeping the wire format backward compatible.
    """
    started_wall = time.time()
    results, stats = _mine_seed_body(state, seed_vertex)
    payload: Dict[str, float] = stats.as_dict()
    payload["_span"] = span_record(  # type: ignore[assignment]
        "mine_seed",
        started_wall,
        time.time(),
        seed=seed_vertex,
        branch_calls=stats.branch_calls,
        outputs=len(results),
    )
    return results, payload


def _mine_seed_body(
    state: _WorkerState, seed_vertex: int
) -> Tuple[List[Tuple[int, ...]], SearchStatistics]:
    graph = state.prepared.graph
    k = state.k
    q = state.q
    config = state.config
    timeout = state.timeout
    position: Sequence[int] = state.prepared.position

    stats = SearchStatistics()
    results: List[Tuple[int, ...]] = []
    context = build_seed_context(graph, position, seed_vertex, k, q, config, stats)
    if context is None:
        return results, stats

    pending: deque = deque()
    searcher = BranchSearcher(
        context,
        k,
        q,
        config,
        stats,
        on_result=lambda mask: results.append(
            tuple(sorted(context.subgraph.parents_of_mask(mask)))
        ),
        timeout=timeout,
        task_sink=pending.append if timeout is not None else None,
    )
    for task in iter_subtasks(context, k, q, config, stats):
        searcher.run_subtask(task)
        # Straggler decomposition: branch states spilled by the timeout are
        # re-run as fresh tasks with a new deadline each.
        while pending:
            searcher.run_state(pending.popleft())
    return results, stats


def _mine_seed_faulted(
    seed_vertex: int, kind: str, param: Optional[float]
) -> Tuple[List[Tuple[int, ...]], Dict[str, float]]:
    """Fault-wrapped worker entry point (chaos testing only).

    The *driver's* :class:`FaultInjector` decides — and consumes the budget
    for — each fault before submission; the worker merely enacts it.  A
    respawned worker therefore never re-inherits a live fault and kills
    itself forever.
    """
    if kind == "kill":
        os._exit(1)
    if kind == "exc":
        raise FaultInjectedError(f"injected worker failure at seed {seed_vertex}")
    if kind == "delay" and param:
        time.sleep(param)
    return _mine_seed(seed_vertex)


def _evaluate_thread_seed_fault(
    injector, seed_vertex: int
) -> Optional[Tuple[str, Optional[float]]]:
    """Thread-mode seed faults: the subset that is safe without a process.

    ``seed_delay`` and ``seed_exception`` behave identically in both pool
    modes; the crash faults (``seed_crash``, ``worker_kill``) stay
    process-pool-only — enacting them in a thread would take down the whole
    driver instead of one worker.
    """
    raise_at = injector.param("seed_exception")
    if raise_at is not None and int(raise_at) == seed_vertex and injector.fire("seed_exception"):
        return ("exc", None)
    delay = injector.param("seed_delay")
    if delay is not None and injector.fire("seed_delay"):
        return ("delay", delay)
    return None


def _evaluate_seed_fault(injector, seed_vertex: int) -> Optional[Tuple[str, Optional[float]]]:
    """Driver-side: which armed fault (if any) applies to this submission."""
    crash_at = injector.param("seed_crash")
    if crash_at is not None and int(crash_at) == seed_vertex and injector.fire("seed_crash"):
        return ("kill", None)
    raise_at = injector.param("seed_exception")
    if raise_at is not None and int(raise_at) == seed_vertex and injector.fire("seed_exception"):
        return ("exc", None)
    if injector.fire("worker_kill"):
        return ("kill", None)
    delay = injector.param("seed_delay")
    if delay is not None and injector.fire("seed_delay"):
        return ("delay", delay)
    return None


def _stats_from_dict(values: Dict[str, float]) -> SearchStatistics:
    stats = SearchStatistics()
    for key, value in values.items():
        if hasattr(stats, key):
            setattr(stats, key, type(getattr(stats, key))(value))
    return stats


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #
def _enumerate_parallel(
    graph: Graph,
    k: int,
    q: int,
    parallel: Optional[ParallelConfig] = None,
) -> EnumerationResult:
    """Implementation of the task-parallel enumeration (used by the engine's
    ``parallel`` solver; library callers should go through
    :func:`parallel_enumerate_maximal_kplexes` or
    :class:`repro.api.KPlexEngine`)."""
    validate_parameters(k, q)
    parallel = parallel or ParallelConfig()
    started = time.perf_counter()

    # Graph-level preprocessing, all served by (and cached in) the prepared
    # index: core shrinking, degeneracy ordering and the CSR arrays that are
    # shipped to the workers.
    preprocess_span = start_span("preprocess", core_level=q - k)
    prepared_core, core_map = prepare(graph).prepared_core(q - k)
    core_graph = prepared_core.graph
    merged_stats = SearchStatistics()
    merged_stats.preprocess_seconds = time.perf_counter() - started
    if preprocess_span is not None:
        preprocess_span.set(core_vertices=core_graph.num_vertices).finish()
    kplexes: List[KPlex] = []

    if core_graph.num_vertices >= q:
        with span("seed_generation") as seed_span:
            seeds = prepared_core.decomposition.order
            # Materialise the position index before pickling so no worker
            # recomputes the ordering; this is still preprocessing time.
            prepared_core.position
            seed_span.set(seeds=len(seeds))
        merged_stats.preprocess_seconds = time.perf_counter() - started
        stage = parallel.stage_size or parallel.num_workers
        shared_payload = None

        # The segment must be unlinked exactly once on every exit path —
        # normal completion, a raising worker, a crashed pool, even a failing
        # pool constructor — or it leaks in /dev/shm until reboot.
        try:
            if parallel.use_processes:
                injector = fault_injector()
                use_shared = parallel.shared_memory
                if use_shared is None:
                    use_shared = shared_memory_available()
                if use_shared:
                    try:
                        if injector.fire("shm_fail"):
                            raise SharedMemoryError(
                                "injected shared-memory publish failure"
                            )
                        shared_payload = prepared_core.share()
                    except SharedMemoryError as exc:
                        # Fall back to pickled per-worker transfer — slower,
                        # but correct.  Observable, not silent: counted in
                        # the service metrics and logged with the cause.
                        shared_payload = None
                        resilience_stats().increment("shm_fallbacks")
                        logger.warning(
                            "resilience: shared-memory publish failed "
                            "(%s: %s); falling back to pickled per-worker "
                            "transfer",
                            type(exc).__name__, exc,
                        )
                if shared_payload is not None:
                    initializer = _initialise_worker_shared
                    init_args = (
                        shared_payload.descriptor(),
                        k,
                        q,
                        parallel.enumeration,
                        parallel.timeout_seconds,
                    )
                else:
                    initializer = _initialise_worker
                    init_args = (
                        prepared_core.for_worker_transfer(),
                        k,
                        q,
                        parallel.enumeration,
                        parallel.timeout_seconds,
                    )

                # The rebuild path reuses the same initargs: the driver's
                # shared-memory segment outlives any worker crash, so a
                # fresh pool's initializer re-attaches the same descriptor.
                def pool_factory():
                    if injector.fire("pool_build"):
                        raise WorkerCrashError("injected pool construction failure")
                    return ProcessPoolExecutor(
                        max_workers=parallel.num_workers,
                        initializer=initializer,
                        initargs=init_args,
                    )

                def submit(pool, seed_vertex):
                    if injector.enabled:
                        fault = _evaluate_seed_fault(injector, seed_vertex)
                        if fault is not None:
                            return pool.submit(
                                _mine_seed_faulted, seed_vertex, fault[0], fault[1]
                            )
                    return pool.submit(_mine_seed, seed_vertex)

                # Degradation ladder's last rung: mine in-process.  Fault
                # points never apply here — the fallback must be safe.
                serial = partial(
                    _mine_seed_with_state,
                    _WorkerState(
                        prepared_core,
                        k,
                        q,
                        parallel.enumeration,
                        parallel.timeout_seconds,
                    ),
                )

                supervisor = PoolSupervisor(
                    pool_factory,
                    submit,
                    serial,
                    retry=parallel.retry,
                    stage_size=stage,
                    max_pool_failures=parallel.max_pool_failures,
                    label="parallel process pool",
                )
                with span(
                    "search", mode="processes", seeds=len(seeds), stage_size=stage
                ) as search_span:
                    outcomes, report = supervisor.run(seeds)
                    search_span.set(
                        pool_recoveries=report.pool_recoveries,
                        task_retries=report.task_retries,
                    )
                merged_stats.pool_recoveries = report.pool_recoveries
                merged_stats.task_retries = report.task_retries
                merged_stats.serial_fallbacks = 1 if report.degraded_serial else 0
                for seed_results, stats_dict in outcomes:
                    # Worker span records ride the stats dict across the
                    # process boundary; re-parent them under the search
                    # span so worker time lands in the right subtree.
                    record = stats_dict.pop("_span", None)
                    if record is not None and search_span.recorded:
                        attach_span_record(record, parent=search_span)
                    merged_stats.merge(_stats_from_dict(stats_dict))
                    for core_vertices in seed_results:
                        original = [core_map[v] for v in core_vertices]
                        kplexes.append(KPlex.from_vertices(graph, original, k))
            else:
                # Bind this run's state directly instead of going through the
                # per-process slot, so concurrent thread-mode runs are isolated.
                # Threads cannot die under the driver, so the thread pool runs
                # unsupervised.
                init_args = (
                    prepared_core.for_worker_transfer(),
                    k,
                    q,
                    parallel.enumeration,
                    parallel.timeout_seconds,
                )
                mine_state = partial(_mine_seed_with_state, _WorkerState(*init_args))
                injector = fault_injector()
                if injector.enabled:
                    def mine(seed_vertex, _mine=mine_state, _injector=injector):
                        fault = _evaluate_thread_seed_fault(_injector, seed_vertex)
                        if fault is not None:
                            kind, param = fault
                            if kind == "exc":
                                raise FaultInjectedError(
                                    f"injected worker failure at seed {seed_vertex}"
                                )
                            if kind == "delay" and param:
                                time.sleep(param)
                        return _mine(seed_vertex)
                else:
                    mine = mine_state
                pool = ThreadPoolExecutor(max_workers=parallel.num_workers)
                try:
                    with span(
                        "search", mode="threads", seeds=len(seeds), stage_size=stage
                    ):
                        for start in range(0, len(seeds), stage):
                            block = seeds[start : start + stage]
                            with span(
                                "seed_batch", offset=start, size=len(block)
                            ) as batch_span:
                                for seed_results, stats_dict in pool.map(mine, block):
                                    record = stats_dict.pop("_span", None)
                                    if record is not None and batch_span.recorded:
                                        attach_span_record(record, parent=batch_span)
                                    merged_stats.merge(_stats_from_dict(stats_dict))
                                    for core_vertices in seed_results:
                                        original = [core_map[v] for v in core_vertices]
                                        kplexes.append(
                                            KPlex.from_vertices(graph, original, k)
                                        )
                finally:
                    pool.shutdown()
        finally:
            if shared_payload is not None:
                shared_payload.unlink()

    with span("merge", results=len(kplexes)):
        kplexes.sort(key=lambda plex: (plex.size, plex.vertices))
    merged_stats.elapsed_seconds = time.perf_counter() - started
    merged_stats.search_seconds = (
        merged_stats.elapsed_seconds - merged_stats.preprocess_seconds
    )
    merged_stats.outputs = len(kplexes)
    return EnumerationResult(
        kplexes=kplexes,
        statistics=merged_stats,
        k=k,
        q=q,
        config=parallel.enumeration,
    )


def parallel_enumerate_maximal_kplexes(
    graph: Graph,
    k: int,
    q: int,
    parallel: Optional[ParallelConfig] = None,
) -> EnumerationResult:
    """Enumerate all maximal k-plexes with at least ``q`` vertices in parallel.

    The result is identical (as a set of vertex sets) to the sequential
    :func:`repro.core.enumerate_maximal_kplexes`; statistics of all workers
    are merged into a single :class:`SearchStatistics`.

    This is a thin shim over :class:`repro.api.KPlexEngine` (solver
    ``"parallel"``), kept for backwards compatibility; it still returns the
    legacy :class:`EnumerationResult`.
    """
    from ..api.engine import KPlexEngine
    from ..api.request import EnumerationRequest

    parallel = parallel or ParallelConfig()
    response = KPlexEngine().solve(
        EnumerationRequest(
            graph=graph,
            k=k,
            q=q,
            solver="parallel",
            options={"parallel": parallel},
        )
    )
    return EnumerationResult(
        kplexes=response.kplexes,
        statistics=response.statistics,
        k=k,
        q=q,
        config=parallel.enumeration,
    )
