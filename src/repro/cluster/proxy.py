"""Thin HTTP forwarding primitives used by the cluster router.

The router is a proxy, not a client: it relays raw JSON bodies between the
caller and a replica without decoding them (except where routing requires a
peek at the graph name).  :func:`forward` performs one buffered round trip;
:func:`open_stream` hands back a live :class:`HTTPResponse` for routes that
must be re-chunked line-by-line (NDJSON job-result streams).

Connection-level failures surface as ``OSError`` — the router's retry loop
catches exactly that to fail over to the ring's backup replica.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from http.client import HTTPConnection, HTTPResponse
from typing import Dict, Optional, Tuple
from urllib.parse import urlsplit

__all__ = ["ProxyResponse", "forward", "open_stream"]

#: Hop-by-hop (or recomputed) headers never copied from a replica response.
_HOP_HEADERS = frozenset(
    {"connection", "keep-alive", "transfer-encoding", "content-length",
     "server", "date"}
)


class _NoDelayHTTPConnection(HTTPConnection):
    """Nagle-free connection (same rationale as the service client's)."""

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


def _split(base_url: str) -> Tuple[str, int, str]:
    parts = urlsplit(base_url)
    return parts.hostname or "127.0.0.1", parts.port or 80, parts.path.rstrip("/")


@dataclass
class ProxyResponse:
    """One buffered upstream response, ready to relay."""

    status: int
    reason: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def content_type(self) -> str:
        return self.headers.get("Content-Type", "application/octet-stream")


def forward(
    base_url: str,
    method: str,
    path: str,
    body: Optional[bytes] = None,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 60.0,
) -> ProxyResponse:
    """One buffered round trip to ``base_url``; raises ``OSError`` on failure."""
    host, port, prefix = _split(base_url)
    conn = _NoDelayHTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(method, prefix + path, body=body, headers=headers or {})
        response: HTTPResponse = conn.getresponse()
        raw = response.read()
        kept = {
            key: value
            for key, value in response.getheaders()
            if key.lower() not in _HOP_HEADERS
        }
        return ProxyResponse(response.status, response.reason, kept, raw)
    finally:
        conn.close()


def open_stream(
    base_url: str,
    path: str,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 60.0,
) -> Tuple[HTTPConnection, HTTPResponse]:
    """Open a streaming GET; the caller iterates the response and closes both.

    Unlike :func:`forward` the body is *not* drained — job-result streams
    are unbounded in time, so the router relays them line-by-line while the
    upstream enumeration is still producing.
    """
    host, port, prefix = _split(base_url)
    conn = _NoDelayHTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", prefix + path, headers=headers or {})
        response = conn.getresponse()
    except BaseException:
        conn.close()
        raise
    return conn, response
