"""Core contribution: the branch-and-bound maximal k-plex enumeration."""

from .bounds import (
    degree_bound,
    fp_style_bound,
    pairwise_bound,
    seed_task_bound,
    support_bound,
)
from .branch import BranchSearcher, BranchState
from .config import (
    BRANCHING_FAPLEXEN,
    BRANCHING_PIVOT,
    NAMED_VARIANTS,
    UPPER_BOUND_FP,
    UPPER_BOUND_PAPER,
    EnumerationConfig,
    config_by_name,
)
from .enumerator import (
    EnumerationResult,
    KPlexEnumerator,
    count_maximal_kplexes,
    enumerate_maximal_kplexes,
)
from .kplex import (
    KPlex,
    can_extend,
    deduplicate,
    is_kplex,
    is_maximal_kplex,
    kplex_diameter_ok,
    non_neighbor_count,
    saturated_vertices,
    support_number,
    validate_parameters,
    validate_query_vertices,
    verify_kplex,
)
from .pivot import repick_pivot_from_candidates, select_pivot
from .query import best_community_for, enumerate_kplexes_containing
from .pruning import build_pair_matrix, corollary_52_keep, pairs_allowed
from .seeds import SeedContext, SubTask, build_seed_context, iter_seed_contexts, iter_subtasks
from .stats import SearchStatistics

__all__ = [
    "KPlex",
    "KPlexEnumerator",
    "EnumerationConfig",
    "EnumerationResult",
    "SearchStatistics",
    "BranchSearcher",
    "BranchState",
    "SeedContext",
    "SubTask",
    "enumerate_maximal_kplexes",
    "count_maximal_kplexes",
    "enumerate_kplexes_containing",
    "best_community_for",
    "is_kplex",
    "is_maximal_kplex",
    "can_extend",
    "verify_kplex",
    "validate_parameters",
    "validate_query_vertices",
    "non_neighbor_count",
    "saturated_vertices",
    "support_number",
    "kplex_diameter_ok",
    "deduplicate",
    "degree_bound",
    "support_bound",
    "seed_task_bound",
    "fp_style_bound",
    "pairwise_bound",
    "select_pivot",
    "repick_pivot_from_candidates",
    "build_pair_matrix",
    "corollary_52_keep",
    "pairs_allowed",
    "build_seed_context",
    "iter_seed_contexts",
    "iter_subtasks",
    "config_by_name",
    "NAMED_VARIANTS",
    "BRANCHING_PIVOT",
    "BRANCHING_FAPLEXEN",
    "UPPER_BOUND_PAPER",
    "UPPER_BOUND_FP",
]
