"""Tests for query-anchored enumeration (community search)."""

import pytest

from repro.baselines.brute_force import brute_force_vertex_sets
from repro.core import (
    EnumerationConfig,
    best_community_for,
    enumerate_kplexes_containing,
    enumerate_maximal_kplexes,
)
from repro.errors import ParameterError
from repro.graph import Graph, generators

from _helpers import random_graph_cases, vertex_sets


def test_query_matches_filtered_global_enumeration():
    graph = generators.relaxed_caveman(3, 7, 0.25, seed=90)
    k, q = 2, 5
    everything = enumerate_maximal_kplexes(graph, k, q)
    for query_vertex in range(0, graph.num_vertices, 5):
        expected = {frozenset(p.vertices) for p in everything if query_vertex in p.vertices}
        actual = vertex_sets(enumerate_kplexes_containing(graph, [query_vertex], k, q))
        assert actual == expected, f"query vertex {query_vertex}"


def test_query_matches_brute_force_on_random_graphs():
    for index, graph in enumerate(random_graph_cases(6, max_vertices=11, seed=91)):
        k, q = 2, 3
        oracle = brute_force_vertex_sets(graph, k, q)
        for query_vertex in range(0, graph.num_vertices, 3):
            expected = {members for members in oracle if query_vertex in members}
            actual = vertex_sets(enumerate_kplexes_containing(graph, [query_vertex], k, q))
            assert actual == expected, f"graph #{index}, query {query_vertex}"


def test_query_with_multiple_vertices():
    graph = generators.planted_kplex(30, 0.05, 8, 2, num_plexes=1, seed=92)
    k, q = 2, 6
    # Vertices 0 and 5 belong to the planted structure, so at least one result
    # must contain both; a planted member and a far-away background vertex
    # typically cannot co-occur.
    both = enumerate_kplexes_containing(graph, [0, 5], k, q)
    assert both
    for plex in both:
        assert 0 in plex.vertices and 5 in plex.vertices
    everything = enumerate_maximal_kplexes(graph, k, q)
    expected = {frozenset(p.vertices) for p in everything if {0, 5} <= set(p.vertices)}
    assert vertex_sets(both) == expected


def test_query_non_kplex_query_returns_empty():
    graph = generators.path_graph(8)
    # Vertices 0 and 7 are far apart: {0, 7} is not a 2-plex of the path.
    assert enumerate_kplexes_containing(graph, [0, 7], 2, 3) == []


def test_query_validations():
    graph = generators.cycle_graph(6)
    with pytest.raises(ParameterError):
        enumerate_kplexes_containing(graph, [], 2, 4)
    with pytest.raises(ParameterError):
        enumerate_kplexes_containing(graph, [99], 2, 4)
    with pytest.raises(ParameterError):
        enumerate_kplexes_containing(graph, [0, 1, 2, 3, 4], 2, 4)
    with pytest.raises(ParameterError):
        enumerate_kplexes_containing(graph, [0], 2, 2)  # q < 2k - 1


def test_query_respects_config_variants():
    graph = generators.relaxed_caveman(3, 6, 0.3, seed=93)
    k, q = 2, 5
    reference = vertex_sets(enumerate_kplexes_containing(graph, [0], k, q))
    for config in (EnumerationConfig.ours_p(), EnumerationConfig.without_upper_bound()):
        assert vertex_sets(enumerate_kplexes_containing(graph, [0], k, q, config)) == reference


def test_best_community_for():
    graph = generators.planted_kplex(40, 0.04, 9, 2, num_plexes=1, seed=94)
    best = best_community_for(graph, 3, 2, 6)
    assert best is not None
    assert 3 in best.vertices
    assert best.size >= 8  # recovers (most of) the planted structure
    # A background vertex far from the planted block has no large community.
    lonely = best_community_for(generators.path_graph(10), 0, 2, 5)
    assert lonely is None


def test_query_on_labelled_graph():
    graph = Graph.from_edges(
        [("a", "b"), ("a", "c"), ("b", "c"), ("b", "d"), ("c", "d"), ("d", "e"), ("e", "a")]
    )
    results = enumerate_kplexes_containing(graph, [graph.index_of("a")], 2, 4)
    assert results
    assert all("a" in plex.labels for plex in results)
