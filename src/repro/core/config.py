"""Configuration of the enumeration algorithm and its ablation variants.

Every optimisation described in the paper can be toggled individually so that
the ablation studies (Tables 5 and 6, Figures 9 and 15) can be reproduced:

* ``branching`` selects between the default algorithm ``Ours`` (re-pick the
  pivot from the candidate set and use upper-bound pruning, Algorithm 3
  lines 15–19) and the variant ``Ours_P`` (FaPlexen-style multi-branching of
  Eq (4)–(6) when the pivot lies in ``P``).
* ``use_upper_bound`` / ``upper_bound_method`` control the Eq (3) pruning of
  the include-branch: the paper's bound (Theorems 5.3 and 5.5) or the
  FP-style sorting bound (the ``Ours\\ub+fp`` ablation).
* ``use_seed_upper_bound`` is pruning rule R1 (Theorem 5.7, applied to each
  initial sub-task before branching).
* ``use_pair_pruning`` is pruning rule R2 (Theorems 5.13–5.15, the boolean
  co-occurrence matrix ``T``).
* ``use_seed_pruning`` is the Corollary 5.2 shrinking of seed subgraphs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

BRANCHING_PIVOT = "pivot"  # Ours: re-pick pivot from C, prune with Eq (3)
BRANCHING_FAPLEXEN = "faplexen"  # Ours_P: Eq (4)-(6) multi-branching when pivot in P

UPPER_BOUND_PAPER = "paper"  # min of Theorem 5.3 and Theorem 5.5 bounds
UPPER_BOUND_FP = "fp"  # sorting-based bound modelled after FP (Lemma 5 of [16])

_VALID_BRANCHING = (BRANCHING_PIVOT, BRANCHING_FAPLEXEN)
_VALID_UPPER_BOUNDS = (UPPER_BOUND_PAPER, UPPER_BOUND_FP)


@dataclass(frozen=True)
class EnumerationConfig:
    """Tunable switches of :class:`repro.core.enumerator.KPlexEnumerator`."""

    branching: str = BRANCHING_PIVOT
    use_upper_bound: bool = True
    upper_bound_method: str = UPPER_BOUND_PAPER
    use_seed_upper_bound: bool = True
    use_pair_pruning: bool = True
    use_seed_pruning: bool = True
    sort_results: bool = True

    def __post_init__(self) -> None:
        if self.branching not in _VALID_BRANCHING:
            raise ValueError(
                f"branching must be one of {_VALID_BRANCHING}, got {self.branching!r}"
            )
        if self.upper_bound_method not in _VALID_UPPER_BOUNDS:
            raise ValueError(
                f"upper_bound_method must be one of {_VALID_UPPER_BOUNDS}, "
                f"got {self.upper_bound_method!r}"
            )

    # ------------------------------------------------------------------ #
    # Named variants matching the paper's experiment labels
    # ------------------------------------------------------------------ #
    @classmethod
    def ours(cls) -> "EnumerationConfig":
        """The default algorithm ``Ours`` with every technique enabled."""
        return cls()

    @classmethod
    def ours_p(cls) -> "EnumerationConfig":
        """The ``Ours_P`` variant: FaPlexen branching instead of pivot re-picking."""
        return cls(branching=BRANCHING_FAPLEXEN)

    @classmethod
    def basic(cls) -> "EnumerationConfig":
        """``Basic``: Ours without the R1 and R2 pruning rules (Table 6)."""
        return cls(use_seed_upper_bound=False, use_pair_pruning=False)

    @classmethod
    def basic_with_r1(cls) -> "EnumerationConfig":
        """``Basic+R1``: add Theorem 5.7 sub-task pruning back (Table 6)."""
        return cls(use_seed_upper_bound=True, use_pair_pruning=False)

    @classmethod
    def basic_with_r2(cls) -> "EnumerationConfig":
        """``Basic+R2``: add the vertex-pair pruning back (Table 6)."""
        return cls(use_seed_upper_bound=False, use_pair_pruning=True)

    @classmethod
    def without_upper_bound(cls) -> "EnumerationConfig":
        """``Ours\\ub``: disable the Eq (3) upper-bound pruning (Table 5)."""
        return cls(use_upper_bound=False)

    @classmethod
    def with_fp_upper_bound(cls) -> "EnumerationConfig":
        """``Ours\\ub+fp``: replace the paper's bound with the FP-style bound (Table 5)."""
        return cls(upper_bound_method=UPPER_BOUND_FP)

    def with_changes(self, **changes: object) -> "EnumerationConfig":
        """Return a copy of the configuration with the given fields replaced."""
        return replace(self, **changes)

    @property
    def label(self) -> str:
        """Short human-readable label used in experiment tables."""
        if self.branching == BRANCHING_FAPLEXEN:
            return "Ours_P"
        if not self.use_upper_bound:
            if not self.use_seed_upper_bound and not self.use_pair_pruning:
                return "Basic\\ub"
            return "Ours\\ub"
        if self.upper_bound_method == UPPER_BOUND_FP:
            return "Ours\\ub+fp"
        if not self.use_seed_upper_bound and not self.use_pair_pruning:
            return "Basic"
        if self.use_seed_upper_bound and not self.use_pair_pruning:
            return "Basic+R1"
        if not self.use_seed_upper_bound and self.use_pair_pruning:
            return "Basic+R2"
        return "Ours"


NAMED_VARIANTS = {
    "ours": EnumerationConfig.ours,
    "ours_p": EnumerationConfig.ours_p,
    "basic": EnumerationConfig.basic,
    "basic+r1": EnumerationConfig.basic_with_r1,
    "basic+r2": EnumerationConfig.basic_with_r2,
    "ours-no-ub": EnumerationConfig.without_upper_bound,
    "ours-fp-ub": EnumerationConfig.with_fp_upper_bound,
}


def config_by_name(name: str) -> EnumerationConfig:
    """Return a named configuration variant (case-insensitive)."""
    key = name.strip().lower()
    try:
        return NAMED_VARIANTS[key]()
    except KeyError as exc:
        known = ", ".join(sorted(NAMED_VARIANTS))
        raise ValueError(f"unknown variant {name!r}; known variants: {known}") from exc
