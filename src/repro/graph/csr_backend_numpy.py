"""Vectorised numpy CSR backend.

Same interface and bit-identical results as the ``array`` backend
(:mod:`repro.graph.csr_backend_array`), with the interpreted inner loops
replaced by numpy primitives:

* ``has_edge`` is ``np.searchsorted`` over the row slice;
* two-hop expansion gathers all second-hop rows with one fancy-indexed
  read (the classic repeat/cumsum multi-slice gather) and deduplicates
  with ``np.unique``;
* the full-graph :meth:`two_hop_counts` sweep packs the adjacency matrix
  into bit rows (``np.packbits``) and OR-reduces each vertex's neighbour
  rows with one ``np.bitwise_or.reduceat`` — a boolean-semiring sparse
  matrix product over machine words; graphs too large for a packed matrix
  fall back to a chunked scatter-gather.  This is the kernel microbench
  gated at >= 2x over the frozenset path in
  ``benchmarks/bench_csr_numpy.py``;
* ``k_core_alive`` peels rounds of doomed vertices at once, decrementing
  survivor degrees with one ``np.bincount`` per round;
* induced-row / ``rows_onto`` projection scatters the local index map and
  packs bitset rows with ``np.packbits``.

Dtypes are derived from :mod:`repro.graph.csr_types` — the same helper the
``array`` backend and the shared-memory transport use — so the flat buffers
of the two backends are interchangeable byte-for-byte.

Every value returned across the API boundary is a Python ``int`` (or a list
thereof), never a numpy scalar: bitset masks built from ``np.int64`` would
silently overflow at 64 vertices.
"""

from __future__ import annotations

import threading
from typing import List, Sequence

import numpy as np

from ..errors import GraphError
from .csr_backend_array import CSRGraph
from .csr_types import numpy_index_dtype, numpy_offset_dtype
from .graph import Graph

#: Above this vertex count the packed adjacency matrix of the bitset sweep
#: would exceed ~32 MiB (n^2 / 8 bytes); fall back to chunked scatter.
_PACKED_SWEEP_LIMIT = 16384

#: Upper bound on scratch matrix cells used by blocked/chunked kernels.
_BLOCK_CELLS = 1 << 22

#: Upper bound on bytes gathered per block by the packed sweep.
_GATHER_BYTES = 32 << 20

if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def _popcount_rows(matrix: np.ndarray) -> np.ndarray:
        return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)

else:  # pragma: no cover - numpy 1.x fallback
    _POPCOUNT_LUT = np.array(
        [bin(value).count("1") for value in range(256)], dtype=np.uint8
    )

    def _popcount_rows(matrix: np.ndarray) -> np.ndarray:
        return _POPCOUNT_LUT[matrix].sum(axis=1, dtype=np.int64)


class _NumpyScratch(threading.local):
    """Per-thread ``position`` scratch for the vectorised projections."""

    def __init__(self) -> None:
        self.position = np.empty(0, dtype=numpy_index_dtype())

    def position_array(self, size: int) -> np.ndarray:
        if self.position.size < size:
            self.position = np.full(size, -1, dtype=numpy_index_dtype())
        return self.position


class NumpyCSRGraph(CSRGraph):
    """CSR kernel over ``np.ndarray`` offsets/neighbors (see module docstring)."""

    backend = "numpy"

    __slots__ = ()

    def __init__(self, offsets, neighbors) -> None:
        offsets = np.ascontiguousarray(offsets, dtype=numpy_offset_dtype())
        neighbors = np.ascontiguousarray(neighbors, dtype=numpy_index_dtype())
        self.offsets = offsets
        self.neighbors = neighbors
        self.num_vertices = len(offsets) - 1
        self.num_edges = len(neighbors) // 2
        self._scratch = _NumpyScratch()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def _from_rows(cls, rows, n: int) -> "NumpyCSRGraph":
        offsets = np.zeros(n + 1, dtype=numpy_offset_dtype())
        chunks: List[Sequence[int]] = []
        total = 0
        for vertex, row in enumerate(rows):
            chunks.append(row)
            total += len(row)
            offsets[vertex + 1] = total
        if chunks:
            flat = np.fromiter(
                (v for row in chunks for v in row),
                dtype=numpy_index_dtype(),
                count=total,
            )
        else:
            flat = np.empty(0, dtype=numpy_index_dtype())
        return cls(offsets, flat)

    @classmethod
    def attach(cls, offsets_buffer, neighbors_buffer) -> "NumpyCSRGraph":
        """Zero-copy view over externally owned buffers (shared memory)."""
        instance = cls.__new__(cls)
        instance.offsets = np.frombuffer(offsets_buffer, dtype=numpy_offset_dtype())
        instance.neighbors = np.frombuffer(neighbors_buffer, dtype=numpy_index_dtype())
        instance.num_vertices = len(instance.offsets) - 1
        instance.num_edges = len(instance.neighbors) // 2
        instance._scratch = _NumpyScratch()
        return instance

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    def degree(self, vertex: int) -> int:
        return int(self.offsets[vertex + 1] - self.offsets[vertex])

    def degrees(self) -> List[int]:
        return np.diff(self.offsets).tolist()

    def neighbors_list(self, vertex: int) -> List[int]:
        return self.neighbors[self.offsets[vertex] : self.offsets[vertex + 1]].tolist()

    def has_edge(self, u: int, v: int) -> bool:
        row = self.neighbors[self.offsets[u] : self.offsets[u + 1]]
        index = int(np.searchsorted(row, v))
        return index < row.size and int(row[index]) == v

    # ------------------------------------------------------------------ #
    # Vectorised gathers
    # ------------------------------------------------------------------ #
    def _gather_rows(self, vertices: np.ndarray):
        """Concatenated neighbour rows of ``vertices`` plus per-row lengths."""
        starts = self.offsets[vertices].astype(np.int64, copy=False)
        counts = (self.offsets[vertices + 1] - self.offsets[vertices]).astype(
            np.int64, copy=False
        )
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), counts
        shifts = np.repeat(
            starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
        )
        values = self.neighbors[shifts + np.arange(total, dtype=np.int64)]
        return values.astype(np.int64, copy=False), counts

    @staticmethod
    def _in_sorted(values: np.ndarray, reference: np.ndarray) -> np.ndarray:
        """Membership mask of ``values`` in the sorted unique ``reference``."""
        if reference.size == 0:
            return np.zeros(values.shape, dtype=bool)
        positions = np.searchsorted(reference, values)
        positions[positions >= reference.size] = reference.size - 1
        return reference[positions] == values

    # ------------------------------------------------------------------ #
    # Neighbourhood expansion
    # ------------------------------------------------------------------ #
    def two_hop_neighbors(self, vertex: int) -> List[int]:
        first = self.neighbors[
            self.offsets[vertex] : self.offsets[vertex + 1]
        ].astype(np.int64, copy=False)
        if first.size == 0:
            return []
        second, _ = self._gather_rows(first)
        if second.size == 0:
            return []
        second = np.unique(second)
        second = second[~self._in_sorted(second, first)]
        return second[second != vertex].tolist()

    def neighborhood_within_two_hops(self, vertex: int) -> List[int]:
        first = self.neighbors[
            self.offsets[vertex] : self.offsets[vertex + 1]
        ].astype(np.int64, copy=False)
        second, _ = self._gather_rows(first)
        closed = np.unique(
            np.concatenate((np.array([vertex], dtype=np.int64), first, second))
        )
        return closed.tolist()

    def two_hop_counts(self) -> List[int]:
        """Full-graph two-hop sweep (the gated kernel microbench).

        Graphs whose packed adjacency matrix fits the
        :data:`_PACKED_SWEEP_LIMIT` budget run the bit-parallel kernel:
        ``reach(v) = OR of the packed rows of N(v)``, one
        ``np.bitwise_or.reduceat`` over the gathered rows, then a popcount
        per row after masking out distance <= 1.  Larger graphs fall back
        to a chunked scatter-gather that bounds scratch memory by
        :data:`_BLOCK_CELLS` cells.
        """
        n = self.num_vertices
        if n == 0:
            return []
        if n <= _PACKED_SWEEP_LIMIT:
            return self._two_hop_counts_packed(n)
        return self._two_hop_counts_chunked(n)

    def _packed_adjacency(self, n: int, words: int) -> np.ndarray:
        """Adjacency as little-endian bit rows (``words`` uint8 per vertex)."""
        degrees = np.diff(self.offsets).astype(np.int64, copy=False)
        owners = np.repeat(np.arange(n, dtype=np.int64), degrees)
        neighbors64 = self.neighbors.astype(np.int64, copy=False)
        packed = np.empty((n, words), dtype=np.uint8)
        block = max(1, _BLOCK_CELLS // n)
        offsets64 = self.offsets.astype(np.int64, copy=False)
        for start in range(0, n, block):
            stop = min(n, start + block)
            lo, hi = int(offsets64[start]), int(offsets64[stop])
            dense = np.zeros((stop - start, n), dtype=bool)
            dense[owners[lo:hi] - start, neighbors64[lo:hi]] = True
            packed[start:stop] = np.packbits(dense, axis=1, bitorder="little")
        return packed

    def _two_hop_counts_packed(self, n: int) -> List[int]:
        words = (n + 7) >> 3
        packed = self._packed_adjacency(n, words)
        offsets64 = self.offsets.astype(np.int64, copy=False)
        neighbors64 = self.neighbors.astype(np.int64, copy=False)
        degrees = np.diff(offsets64)
        counts = np.zeros(n, dtype=np.int64)
        max_slots = max(1, _GATHER_BYTES // words)
        start = 0
        while start < n:
            # Grow the vertex block until its neighbour slots hit the gather
            # budget (empty rows are free, so blocks are vertex ranges).
            base = int(offsets64[start])
            stop = int(np.searchsorted(offsets64, base + max_slots, side="right")) - 1
            stop = max(start + 1, min(n, stop))
            active = np.flatnonzero(degrees[start:stop] > 0) + start
            if active.size:
                gathered = packed[neighbors64[base : int(offsets64[stop])]]
                reach = np.bitwise_or.reduceat(
                    gathered, offsets64[active] - base, axis=0
                )
                reach &= ~packed[active]  # drop direct neighbours
                reach[np.arange(active.size), active >> 3] &= ~(
                    np.uint8(1) << (active & 7).astype(np.uint8)
                )  # drop the vertex itself
                counts[active] = _popcount_rows(reach)
            start = stop
        return counts.tolist()

    def _two_hop_counts_chunked(self, n: int) -> List[int]:
        degrees = np.diff(self.offsets).astype(np.int64, copy=False)
        neighbors64 = self.neighbors.astype(np.int64, copy=False)
        counts_out = np.empty(n, dtype=np.int64)
        chunk = max(1, _BLOCK_CELLS // n)
        mark = np.zeros((chunk, n), dtype=bool)
        for start in range(0, n, chunk):
            stop = min(n, start + chunk)
            width = stop - start
            vertices = np.arange(start, stop, dtype=np.int64)
            first, first_counts = self._gather_rows(vertices)
            second, second_counts = self._gather_rows(first)
            # Owner (chunk-local row) of every first-/second-hop element.
            first_owner = np.repeat(np.arange(width, dtype=np.int64), first_counts)
            second_owner = np.repeat(first_owner, second_counts)
            mark[:width].fill(False)
            mark[second_owner, second] = True
            mark[first_owner, first] = False  # distance-one vertices
            mark[np.arange(width), vertices] = False  # the vertices themselves
            counts_out[start:stop] = mark[:width].sum(axis=1)
        return counts_out.tolist()

    # ------------------------------------------------------------------ #
    # Core peeling
    # ------------------------------------------------------------------ #
    def k_core_alive(self, k: int) -> bytearray:
        n = self.num_vertices
        degrees = np.diff(self.offsets).astype(np.int64)
        alive = np.ones(n, dtype=bool)
        sentinel = np.int64(1) << 60
        while True:
            doomed = np.flatnonzero(alive & (degrees < k))
            if doomed.size == 0:
                break
            alive[doomed] = False
            touched, _ = self._gather_rows(doomed)
            if touched.size:
                degrees -= np.bincount(touched, minlength=n)
            degrees[~alive] = sentinel  # never requeue peeled vertices
        return bytearray(alive.astype(np.uint8).tobytes())

    # ------------------------------------------------------------------ #
    # Subgraph extraction
    # ------------------------------------------------------------------ #
    def _check_in_range_np(self, vertices: np.ndarray, role: str) -> None:
        if vertices.size and (
            int(vertices.min()) < 0 or int(vertices.max()) >= self.num_vertices
        ):
            bad = vertices[(vertices < 0) | (vertices >= self.num_vertices)]
            raise GraphError(f"{role} vertex {int(bad[0])} is out of range")

    def rows_onto(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> List[int]:
        sources_np = np.asarray(sources, dtype=np.int64).reshape(-1)
        targets_np = np.asarray(targets, dtype=np.int64).reshape(-1)
        self._check_in_range_np(targets_np, "target")
        self._check_in_range_np(sources_np, "source")
        position = self._scratch.position_array(self.num_vertices)
        try:
            position[targets_np] = np.arange(
                targets_np.size, dtype=numpy_index_dtype()
            )
            width = targets_np.size
            rows: List[int] = []
            block = max(1, _BLOCK_CELLS // max(1, width))
            for start in range(0, sources_np.size, block):
                stop = min(sources_np.size, start + block)
                batch = sources_np[start:stop]
                flat, counts = self._gather_rows(batch)
                locals_ = position[flat].astype(np.int64, copy=False)
                owners = np.repeat(np.arange(stop - start, dtype=np.int64), counts)
                keep = locals_ >= 0
                matrix = np.zeros((stop - start, width), dtype=bool)
                matrix[owners[keep], locals_[keep]] = True
                packed = np.packbits(matrix, axis=1, bitorder="little")
                rows.extend(
                    int.from_bytes(packed[i].tobytes(), "little")
                    for i in range(stop - start)
                )
        finally:
            position[targets_np] = -1
        return rows

    def induced_adjacency(self, kept: Sequence[int]) -> List[List[int]]:
        kept_np = np.asarray(kept, dtype=np.int64).reshape(-1)
        self._check_in_range_np(kept_np, "kept")
        if kept_np.size == 0:
            return []
        position = self._scratch.position_array(self.num_vertices)
        try:
            position[kept_np] = np.arange(kept_np.size, dtype=numpy_index_dtype())
            flat, counts = self._gather_rows(kept_np)
            locals_ = position[flat].astype(np.int64, copy=False)
            owners = np.repeat(np.arange(kept_np.size, dtype=np.int64), counts)
            keep = locals_ >= 0
            owners = owners[keep]
            locals_ = locals_[keep]
            boundaries = np.searchsorted(owners, np.arange(1, kept_np.size))
            return [chunk.tolist() for chunk in np.split(locals_, boundaries)]
        finally:
            position[kept_np] = -1

    # ------------------------------------------------------------------ #
    # Pickling
    # ------------------------------------------------------------------ #
    def __reduce__(self):
        return (
            self.__class__,
            (np.array(self.offsets), np.array(self.neighbors)),
        )


def numpy_csr_from_graph(graph: Graph) -> NumpyCSRGraph:
    """Module-level factory used by :mod:`repro.graph.csr`."""
    return NumpyCSRGraph.from_graph(graph)
