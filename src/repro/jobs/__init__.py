"""Async job subsystem: first-class records for long-running enumerations.

Submitting through a :class:`JobManager` turns an enumeration into a
:class:`Job` — an id, a validated spec, a timestamped lifecycle state
machine (``pending → running → succeeded/failed/cancelled → expired``),
progress counters and a bounded :class:`ResultLog` that streams results
to readers with backpressure.  The HTTP layer exposes the table as the
``/v1/jobs`` routes; this package is the transport-free core.

>>> from repro.jobs import JobManager, JOB_SUCCEEDED
>>> from repro.service import KPlexService
"""

from .job import (
    JOB_CANCELLED,
    JOB_EXPIRED,
    JOB_FAILED,
    JOB_PENDING,
    JOB_RUNNING,
    JOB_STATES,
    JOB_SUCCEEDED,
    READ_END,
    READ_ITEM,
    READ_TIMEOUT,
    TERMINAL_STATES,
    Job,
    ResultLog,
)
from .manager import (
    DRAIN_CANCEL,
    DRAIN_POLICIES,
    DRAIN_WAIT,
    JobManager,
    JobManagerConfig,
)

__all__ = [
    "Job",
    "ResultLog",
    "JobManager",
    "JobManagerConfig",
    "JOB_PENDING",
    "JOB_RUNNING",
    "JOB_SUCCEEDED",
    "JOB_FAILED",
    "JOB_CANCELLED",
    "JOB_EXPIRED",
    "JOB_STATES",
    "TERMINAL_STATES",
    "READ_ITEM",
    "READ_END",
    "READ_TIMEOUT",
    "DRAIN_WAIT",
    "DRAIN_CANCEL",
    "DRAIN_POLICIES",
]
