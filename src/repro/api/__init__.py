"""Unified request/response API over every enumeration backend.

The subsystem has four parts:

* :class:`EnumerationRequest` / :class:`EnumerationResponse` — the validated
  request and the self-describing response (results, statistics, timing,
  termination reason);
* the solver registry (:func:`register_solver`, :func:`get_solver`,
  :func:`solver_names`) — pluggable backends behind one :class:`Solver`
  interface;
* the built-in solver adapters (``ours`` and its ablation variants, ``fp``,
  ``listplex``, ``bron-kerbosch``, ``brute-force``, ``parallel``);
* :class:`KPlexEngine` — the facade with ``solve`` / ``stream`` / ``count``
  / ``solve_batch``.

Quick start
-----------
>>> from repro import Graph
>>> from repro.api import EnumerationRequest, KPlexEngine
>>> graph = Graph.from_edges([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
>>> engine = KPlexEngine()
>>> response = engine.solve(EnumerationRequest(graph=graph, k=2, q=3))
>>> response.count
1
"""

from .engine import CancellationToken, KPlexEngine, ProgressEvent, StreamOutcome
from .registry import (
    Solver,
    SolverRun,
    get_solver,
    register_solver,
    solver_names,
    solver_table,
    unregister_solver,
)
from .request import DEFAULT_SOLVER, EnumerationRequest
from .response import (
    TERMINATION_CANCELLED,
    TERMINATION_COMPLETED,
    TERMINATION_REASONS,
    TERMINATION_RESULT_LIMIT,
    TERMINATION_TIMEOUT,
    EnumerationResponse,
)

__all__ = [
    "KPlexEngine",
    "CancellationToken",
    "ProgressEvent",
    "StreamOutcome",
    "EnumerationRequest",
    "EnumerationResponse",
    "DEFAULT_SOLVER",
    "Solver",
    "SolverRun",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "solver_names",
    "solver_table",
    "TERMINATION_COMPLETED",
    "TERMINATION_TIMEOUT",
    "TERMINATION_CANCELLED",
    "TERMINATION_RESULT_LIMIT",
    "TERMINATION_REASONS",
]
