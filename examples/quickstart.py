"""Quickstart: enumerate large maximal k-plexes of a small graph.

Run with::

    python examples/quickstart.py

The example builds a small social-style graph and mines it twice:

1. through the recommended :class:`repro.KPlexEngine` request/response API
   (solver registry, streaming, statistics, termination reason);
2. through the preserved legacy one-call API
   (:class:`repro.KPlexEnumerator` / ``enumerate_maximal_kplexes``), which is
   now a thin shim over the same engine.

— the 60-second tour of the public API.
"""

from repro import EnumerationRequest, Graph, KPlexEngine, KPlexEnumerator, solver_names
from repro.analysis import cohesion_metrics, verify_response


def build_example_graph() -> Graph:
    """A toy collaboration network: two tight groups sharing two members."""
    edges = [
        # Group A: {alice, bob, carol, dave, erin} — almost a clique.
        ("alice", "bob"),
        ("alice", "carol"),
        ("alice", "dave"),
        ("alice", "erin"),
        ("bob", "carol"),
        ("bob", "dave"),
        ("carol", "dave"),
        ("carol", "erin"),
        ("dave", "erin"),
        # Group B: {erin, frank, grace, heidi, ivan} — also missing a few links.
        ("erin", "frank"),
        ("erin", "grace"),
        ("frank", "grace"),
        ("frank", "heidi"),
        ("frank", "ivan"),
        ("grace", "heidi"),
        ("grace", "ivan"),
        ("heidi", "ivan"),
        # A couple of stray acquaintances.
        ("bob", "frank"),
        ("dave", "ivan"),
    ]
    return Graph.from_edges(edges)


def main() -> None:
    graph = build_example_graph()
    k, q = 2, 5

    # ------------------------------------------------------------------ #
    # The engine API: one facade over every registered solver.
    # ------------------------------------------------------------------ #
    engine = KPlexEngine()
    print(f"Registered solvers: {', '.join(solver_names())}")

    request = EnumerationRequest(graph=graph, k=k, q=q, solver="ours")
    response = engine.solve(request)

    print(f"Graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
    print(f"Maximal {k}-plexes with at least {q} vertices: {response.count}")
    for plex in response:
        metrics = cohesion_metrics(graph, plex.vertices)
        members = ", ".join(str(label) for label in plex.labels)
        print(f"  size={plex.size} density={metrics.density:.2f}  [{members}]")

    report = verify_response(response)
    print(f"Verification: {report.summary()}")
    print(f"Search statistics: {response.statistics}")
    print(f"Termination: {response.termination} after {response.elapsed_seconds:.4f}s")

    # Streaming: results arrive lazily, here with a result budget of one.
    first = next(engine.stream(request))
    print(f"First streamed result: {sorted(str(l) for l in first.labels)}")

    # ------------------------------------------------------------------ #
    # The legacy API still works — it is a shim over the engine.
    # ------------------------------------------------------------------ #
    legacy = KPlexEnumerator(graph, k=k, q=q).run()
    same = {p.as_set() for p in legacy.kplexes} == {p.as_set() for p in response.kplexes}
    print(f"Legacy KPlexEnumerator returns the identical result set: {same}")


if __name__ == "__main__":
    main()
