"""Tests for the experiment harness (workloads, runner, tables, figures).

The drivers are exercised on purpose-built tiny workloads so the whole module
stays fast; the full-scale reproductions live in ``benchmarks/``.
"""

import pytest

from repro.datasets import dataset_names
from repro.experiments import (
    ALGORITHM_FP,
    ALGORITHM_LISTPLEX,
    ALGORITHM_OURS,
    PRUNING_ABLATION,
    SEQUENTIAL_ALGORITHMS,
    UPPER_BOUND_ABLATION,
    Workload,
    ablation_workloads,
    algorithm_names,
    best_timeout,
    cross_check,
    figure7_vary_q,
    figure8_speedup,
    figure9_basic_vs_ours,
    figure13_timeout,
    measure_parallel_workload,
    memory_workloads,
    parallel_workloads,
    run_algorithm,
    sequential_workloads,
    speedup_worker_counts,
    table2_datasets,
    table3_sequential,
    table4_parallel,
    table5_upper_bound_ablation,
    table6_pruning_ablation,
    table7_memory,
    timeout_values,
    vary_q_workloads,
)

TINY = [Workload(dataset="jazz", k=2, q=8, paper_q=20)]
TINY_PARALLEL = [Workload(dataset="jazz", k=2, q=7, paper_q=40)]
TINY_SWEEP = {"jazz": [Workload(dataset="jazz", k=2, q=q, paper_q=q + 10) for q in (7, 8)]}


# --------------------------------------------------------------------------- #
# Workload definitions
# --------------------------------------------------------------------------- #
def test_workload_definitions_reference_known_datasets():
    known = set(dataset_names())
    for workload in (
        sequential_workloads("quick")
        + sequential_workloads("full")
        + parallel_workloads("quick")
        + parallel_workloads("full")
        + ablation_workloads("quick")
        + memory_workloads("quick")
    ):
        assert workload.dataset in known
        assert workload.q >= 2 * workload.k - 1
        assert workload.paper_q >= workload.q  # scaled down, never up
    for sweep in vary_q_workloads("full").values():
        assert len(sweep) >= 3
    assert speedup_worker_counts() == [1, 2, 4, 8, 16]
    assert len(timeout_values("full")) > len(timeout_values("quick"))


def test_workload_describe_and_load():
    workload = TINY[0]
    description = workload.describe()
    assert description["dataset"] == "jazz"
    assert description["paper_q"] == 20
    assert workload.load().num_vertices > 0


# --------------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------------- #
def test_run_algorithm_produces_consistent_counts():
    workload = TINY[0]
    graph = workload.load()
    records = [
        run_algorithm(name, graph, workload.dataset, workload.k, workload.q)
        for name in SEQUENTIAL_ALGORITHMS
    ]
    assert cross_check(records)
    assert all(record.seconds >= 0 for record in records)
    row = records[0].as_row()
    assert row["algorithm"] == records[0].algorithm
    assert set(algorithm_names()) >= set(SEQUENTIAL_ALGORITHMS)
    assert set(algorithm_names()) >= set(UPPER_BOUND_ABLATION) | set(PRUNING_ABLATION)


def test_run_algorithm_memory_measurement():
    workload = TINY[0]
    record = run_algorithm(
        ALGORITHM_OURS, workload.load(), workload.dataset, workload.k, workload.q,
        measure_memory=True,
    )
    assert record.peak_memory_bytes > 0
    assert "peak_memory_mib" in record.as_row()


def test_run_algorithm_unknown_name():
    with pytest.raises(ValueError):
        run_algorithm("nope", TINY[0].load(), "jazz", 2, 8)


def test_cross_check_detects_disagreement():
    record_a = run_algorithm(ALGORITHM_OURS, TINY[0].load(), "jazz", 2, 8)
    record_b = run_algorithm(ALGORITHM_OURS, TINY[0].load(), "jazz", 2, 9)
    record_b.q = 8  # fake a disagreement on the same workload key
    assert not cross_check([record_a, record_b])


# --------------------------------------------------------------------------- #
# Tables
# --------------------------------------------------------------------------- #
def test_table2_lists_every_dataset():
    rows = table2_datasets()
    assert {row["network"] for row in rows} == set(dataset_names())
    assert all(row["surrogate_n"] <= row["paper_n"] for row in rows)


def test_table3_on_tiny_workload():
    rows = table3_sequential(workloads=TINY)
    assert len(rows) == 1
    row = rows[0]
    assert row["all_algorithms_agree"]
    for algorithm in SEQUENTIAL_ALGORITHMS:
        assert f"{algorithm}_seconds" in row


def test_table5_and_table6_on_tiny_workload():
    rows5 = table5_upper_bound_ablation(workloads=TINY)
    assert rows5[0]["Ours_branches"] <= rows5[0]["Ours\\ub_branches"]
    rows6 = table6_pruning_ablation(workloads=TINY)
    assert rows6[0]["Ours_branches"] <= rows6[0]["Basic_branches"]


def test_table7_on_tiny_workload():
    rows = table7_memory(workloads=TINY)
    assert rows[0]["Ours_peak_mib"] > 0


def test_table4_on_tiny_workload():
    rows = table4_parallel(workloads=TINY_PARALLEL, num_workers=4)
    row = rows[0]
    assert row["Ours_seconds"] > 0
    assert row["Ours_best_timeout_seconds"] <= row["Ours_seconds"] * 1.001
    assert row["FP_seconds"] > 0 and row["ListPlex_seconds"] > 0


# --------------------------------------------------------------------------- #
# Figures
# --------------------------------------------------------------------------- #
def test_figure7_and_figure9_on_tiny_sweep():
    series7 = figure7_vary_q(sweeps=TINY_SWEEP)
    assert len(series7) == 1
    curves = next(iter(series7.values()))
    assert set(curves) == {ALGORITHM_FP, ALGORITHM_LISTPLEX, ALGORITHM_OURS}
    assert all(set(points) == {7, 8} for points in curves.values())

    series9 = figure9_basic_vs_ours(sweeps=TINY_SWEEP)
    curves9 = next(iter(series9.values()))
    assert set(curves9) == {"Basic", ALGORITHM_OURS}


def test_figure8_speedup_on_tiny_workload():
    series = figure8_speedup(workloads=TINY_PARALLEL, worker_counts=[1, 2, 4])
    curve = next(iter(series.values()))
    assert curve[1] == 1.0
    assert curve[4] >= curve[2] >= 1.0


def test_figure13_timeout_on_tiny_workload():
    series = figure13_timeout(workloads=TINY_PARALLEL, timeouts=[2.0, 16.0], num_workers=4)
    curve = next(iter(series.values()))
    assert set(curve) == {2.0, 16.0, "inf"}


# --------------------------------------------------------------------------- #
# Parallel cost model
# --------------------------------------------------------------------------- #
def test_measure_parallel_workload_all_algorithms():
    workload = TINY_PARALLEL[0]
    graph = workload.load()
    counts = set()
    for algorithm in (ALGORITHM_FP, ALGORITHM_LISTPLEX, ALGORITHM_OURS):
        measurement = measure_parallel_workload(algorithm, graph, workload.k, workload.q)
        counts.add(measurement.num_kplexes)
        assert measurement.sequential_seconds > 0
        assert measurement.task_groups
        assert measurement.total_cost > 0
        assert measurement.makespan_seconds(4) <= measurement.makespan_seconds(1) * 1.001
    assert len(counts) == 1  # all algorithms agree on the result count


def test_measure_parallel_workload_rejects_unknown():
    with pytest.raises(ValueError):
        measure_parallel_workload("nope", TINY_PARALLEL[0].load(), 2, 7)


def test_best_timeout_returns_minimum():
    workload = TINY_PARALLEL[0]
    measurement = measure_parallel_workload(ALGORITHM_OURS, workload.load(), workload.k, workload.q)
    tuned = best_timeout(measurement, 4, [1.0, 8.0, 64.0])
    assert tuned["timeout"] in (1.0, 8.0, 64.0)
    everything = [
        measurement.makespan_seconds(4, timeout_cost=t, split_overhead=0.5)
        for t in (1.0, 8.0, 64.0)
    ]
    assert tuned["seconds"] == pytest.approx(min(everything))
