"""Structured JSON event pipeline on the ``repro.obs`` logger.

Every interesting lifecycle transition in the serving stack — request
served, job state change, breaker trip, pool recovery, snapshot
quarantine — is emitted as exactly one JSON object per line through
:func:`log_event`.  Events automatically pick up the ``request_id`` of the
active trace so log lines correlate with ``/v1/trace/<id>`` output.

Nothing is written anywhere until :func:`configure_event_logging` attaches
a handler (the server does this at boot); library users pay only an
``isEnabledFor`` check per call.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, IO, Optional

from .trace import current_trace

__all__ = ["EVENT_LOGGER_NAME", "JsonLineFormatter", "configure_event_logging", "log_event"]

EVENT_LOGGER_NAME = "repro.obs"

_LOGGER = logging.getLogger(EVENT_LOGGER_NAME)
# Without explicit configuration events must go nowhere (and never hit the
# logging lastResort handler), but records still propagate for capture in
# tests.
_LOGGER.addHandler(logging.NullHandler())


class JsonLineFormatter(logging.Formatter):
    """Render each record as a single JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            for key, value in fields.items():
                payload.setdefault(key, value)
        return json.dumps(payload, default=str, separators=(",", ":"))


def log_event(event: str, *, level: int = logging.INFO, **fields: Any) -> None:
    """Emit one structured event, tagged with the active request_id."""

    if not _LOGGER.isEnabledFor(level):
        return
    trace = current_trace()
    if trace is not None:
        fields.setdefault("request_id", trace.request_id)
    fields = {key: value for key, value in fields.items() if value is not None}
    _LOGGER.log(level, event, extra={"fields": fields})


def configure_event_logging(
    stream: Optional[IO[str]] = None,
    level: int = logging.INFO,
    propagate: bool = False,
) -> logging.Handler:
    """Attach a JSON-lines handler to the ``repro.obs`` logger.

    Returns the handler so callers (the HTTP server, tests) can detach it
    again with ``remove_event_handler``.
    """

    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLineFormatter())
    handler.setLevel(level)
    _LOGGER.addHandler(handler)
    if _LOGGER.level == logging.NOTSET or _LOGGER.level > level:
        _LOGGER.setLevel(level)
    _LOGGER.propagate = propagate
    return handler


def remove_event_handler(handler: logging.Handler) -> None:
    """Detach a handler previously returned by :func:`configure_event_logging`."""

    _LOGGER.removeHandler(handler)
