"""Reading and writing graphs in the formats common in graph-mining papers.

The datasets the paper uses come from SNAP (whitespace edge lists with ``#``
comments) and LAW (distributed as WebGraph, conventionally converted to edge
lists).  Besides plain edge lists this module also supports the DIMACS and
METIS formats so that graphs produced by other k-plex tools can be loaded for
cross-checking.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Hashable, Iterable, Iterator, List, Optional, Sequence, TextIO, Tuple, Union

from ..errors import FormatError
from .graph import Graph

PathLike = Union[str, Path]


def _open_text(path: PathLike) -> TextIO:
    """Open ``path`` for reading, transparently handling ``.gz`` files."""
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8")


# --------------------------------------------------------------------------- #
# Edge lists (SNAP style)
# --------------------------------------------------------------------------- #
def parse_edge_list(
    lines: Iterable[str],
    comments: Sequence[str] = ("#", "%"),
    delimiter: Optional[str] = None,
) -> Iterator[Tuple[str, str]]:
    """Yield ``(u, v)`` label pairs from edge-list lines.

    Lines that are empty or start with one of the ``comments`` prefixes are
    skipped.  Each remaining line must contain at least two tokens; additional
    tokens (weights, timestamps) are ignored, as is customary for SNAP files.
    """
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or any(line.startswith(prefix) for prefix in comments):
            continue
        tokens = line.split(delimiter) if delimiter else line.split()
        if len(tokens) < 2:
            raise FormatError(f"line {line_number}: expected at least two tokens, got {line!r}")
        yield tokens[0], tokens[1]


def read_edge_list(
    path: PathLike,
    comments: Sequence[str] = ("#", "%"),
    delimiter: Optional[str] = None,
    as_int: bool = True,
) -> Graph:
    """Read an undirected graph from a SNAP-style edge list file."""
    with _open_text(path) as handle:
        pairs = list(parse_edge_list(handle, comments=comments, delimiter=delimiter))
    if as_int:
        converted: List[Tuple[Hashable, Hashable]] = []
        for u, v in pairs:
            try:
                converted.append((int(u), int(v)))
            except ValueError:
                converted = [(u, v) for u, v in pairs]
                break
        pairs = converted  # type: ignore[assignment]
    return Graph.from_edges(pairs)


def write_edge_list(graph: Graph, path: PathLike, header: bool = True) -> None:
    """Write ``graph`` as a whitespace edge list using the original labels."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            handle.write(f"# undirected graph: n={graph.num_vertices} m={graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{graph.label(u)} {graph.label(v)}\n")


# --------------------------------------------------------------------------- #
# DIMACS
# --------------------------------------------------------------------------- #
def read_dimacs(path: PathLike) -> Graph:
    """Read a graph in DIMACS ``p edge`` format (1-based vertex ids)."""
    num_vertices = None
    edges: List[Tuple[int, int]] = []
    with _open_text(path) as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            tokens = line.split()
            if tokens[0] == "p":
                if len(tokens) < 4:
                    raise FormatError(f"line {line_number}: malformed problem line {line!r}")
                num_vertices = int(tokens[2])
            elif tokens[0] == "e":
                if len(tokens) < 3:
                    raise FormatError(f"line {line_number}: malformed edge line {line!r}")
                edges.append((int(tokens[1]) - 1, int(tokens[2]) - 1))
            else:
                raise FormatError(f"line {line_number}: unknown DIMACS record {tokens[0]!r}")
    if num_vertices is None:
        raise FormatError("missing DIMACS problem line ('p edge n m')")
    return Graph.from_edges(edges, vertices=range(num_vertices))


def write_dimacs(graph: Graph, path: PathLike) -> None:
    """Write ``graph`` in DIMACS ``p edge`` format (1-based vertex ids)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"p edge {graph.num_vertices} {graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"e {u + 1} {v + 1}\n")


# --------------------------------------------------------------------------- #
# METIS
# --------------------------------------------------------------------------- #
def read_metis(path: PathLike) -> Graph:
    """Read a graph in METIS adjacency format (1-based vertex ids)."""
    with _open_text(path) as handle:
        lines = [line.strip() for line in handle if line.strip() and not line.startswith("%")]
    if not lines:
        raise FormatError("empty METIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise FormatError("METIS header must contain at least 'n m'")
    num_vertices = int(header[0])
    if len(lines) - 1 < num_vertices:
        raise FormatError(
            f"METIS file declares {num_vertices} vertices but has {len(lines) - 1} adjacency lines"
        )
    edges: List[Tuple[int, int]] = []
    for vertex in range(num_vertices):
        for token in lines[1 + vertex].split():
            edges.append((vertex, int(token) - 1))
    return Graph.from_edges(edges, vertices=range(num_vertices))


def write_metis(graph: Graph, path: PathLike) -> None:
    """Write ``graph`` in METIS adjacency format (1-based vertex ids)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"{graph.num_vertices} {graph.num_edges}\n")
        for vertex in graph.vertices():
            line = " ".join(str(neighbour + 1) for neighbour in sorted(graph.neighbors(vertex)))
            handle.write(line + "\n")


# --------------------------------------------------------------------------- #
# Auto-detection
# --------------------------------------------------------------------------- #
_FORMAT_READERS = {
    "edgelist": read_edge_list,
    "dimacs": read_dimacs,
    "metis": read_metis,
}


def load_graph(path: PathLike, fmt: str = "auto") -> Graph:
    """Load a graph from ``path`` in the requested or auto-detected format.

    ``fmt`` may be ``"edgelist"``, ``"dimacs"``, ``"metis"`` or ``"auto"``.
    Auto-detection looks at the file extension first (``.dimacs``/``.col``,
    ``.metis``/``.graph``) and falls back to the edge-list reader.
    """
    if fmt != "auto":
        try:
            reader = _FORMAT_READERS[fmt]
        except KeyError as exc:
            raise FormatError(f"unknown graph format {fmt!r}") from exc
        return reader(path)
    suffixes = {suffix.lower() for suffix in Path(path).suffixes}
    if suffixes & {".dimacs", ".col", ".clq"}:
        return read_dimacs(path)
    if suffixes & {".metis", ".graph"}:
        return read_metis(path)
    return read_edge_list(path)
