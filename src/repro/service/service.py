"""The concurrent enumeration service front-end.

:class:`KPlexService` turns the library into the system the ROADMAP
describes: a long-lived object answering heavy repeated k-plex traffic over
a :class:`~repro.service.catalog.GraphCatalog` of named graphs, with

* a bounded **worker pool** (threads — solvers release the GIL poorly, but
  the pool gives concurrency across cache hits, I/O-bound callers and the
  process-pool ``parallel`` solver, and bounds resource usage) plus
  **admission control**: at most ``max_workers + max_queue_depth`` requests
  are outstanding, everything beyond is rejected with
  :class:`~repro.errors.ServiceOverloadError` instead of queueing unboundedly;
* **cross-request caching**: a :class:`~repro.service.cache.ResultCache` of
  completed responses and a :class:`~repro.service.cache.SeedContextCache`
  of per-seed subgraphs, both byte-budgeted; identical concurrent misses
  are coalesced so one search fills every waiter;
* **ServiceMetrics**: hit rate, p50/p95 latency, evictions, in-flight and
  admission counters, exported as one JSON-ready snapshot.

The service never mutates responses: cache hits return the shared completed
response object, so callers must treat responses as read-only (they already
are everywhere else in the repository).
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Union

from ..api.engine import CancellationToken, KPlexEngine
from ..api.request import EnumerationRequest
from ..api.response import (
    TERMINATION_COMPLETED,
    TERMINATION_RESULT_LIMIT,
    TERMINATION_TIMEOUT,
    EnumerationResponse,
)
from ..api.solvers import _ConfigurableSolver
from ..api.registry import get_solver
from ..errors import (
    CircuitOpenError,
    ParameterError,
    ServiceClosedError,
    ServiceOverloadError,
)
from ..graph import Graph
from ..obs import (
    DEFAULT_COUNT_BUCKETS,
    MetricsRegistry,
    activate,
    current_span,
    log_event,
    span,
)
from ..resilience import CircuitBreaker, resilience_stats
from .cache import ResultCache, SeedContextCache, result_cache_key
from .catalog import GraphCatalog

#: Outcome labels recorded per completed request.
OUTCOME_HIT = "hit"
OUTCOME_MISS = "miss"
OUTCOME_COALESCED = "coalesced"


@dataclass(frozen=True)
class ServiceConfig:
    """Tunable knobs of :class:`KPlexService`.

    Attributes
    ----------
    max_workers:
        Worker threads executing admitted requests.
    max_queue_depth:
        Admitted requests allowed to wait beyond the running ones; the
        admission bound is ``max_workers + max_queue_depth`` outstanding.
    default_timeout_seconds:
        Applied to requests that carry no timeout of their own.
    result_cache_entries / result_cache_bytes:
        Memory budget of the completed-response cache (``None`` = unbounded
        on that axis); set ``result_cache_entries=0`` to disable caching.
    seed_cache_entries / seed_cache_bytes:
        Memory budget of the seed-context tier; ``seed_cache_entries=0``
        disables it.
    prepared_core_budget:
        Per-graph cap on retained ``core(level)`` subgraphs, applied through
        the catalog on registration (the prepared-index memory budget).
    csr_backend:
        CSR kernel backend (``"array"``/``"numpy"``/``"auto"``) pinned on
        every catalog graph's prepared index; ``None``/``"auto"`` keeps the
        process default (numpy when importable).
    latency_window:
        Retained for compatibility.  Latency percentiles now come from a
        fixed-bucket histogram whose memory is constant regardless of
        traffic; the knob no longer bounds anything.
    breaker_failure_threshold:
        Consecutive backend failures that open the circuit breaker (new
        submissions are then shed with :class:`~repro.errors.CircuitOpenError`
        → HTTP 503 + ``Retry-After``).  ``None`` disables the breaker.
    breaker_cooldown_seconds:
        How long the breaker stays open before letting one half-open probe
        request through.
    """

    max_workers: int = 4
    max_queue_depth: int = 32
    default_timeout_seconds: Optional[float] = None
    result_cache_entries: Optional[int] = 256
    result_cache_bytes: Optional[int] = 64 * 1024 * 1024
    seed_cache_entries: Optional[int] = 64
    seed_cache_bytes: Optional[int] = 32 * 1024 * 1024
    prepared_core_budget: Optional[int] = None
    csr_backend: Optional[str] = None
    latency_window: int = 2048
    breaker_failure_threshold: Optional[int] = 5
    breaker_cooldown_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.csr_backend is not None:
            from ..graph.csr import resolve_csr_backend

            resolve_csr_backend(self.csr_backend)  # validates name/availability
        if self.max_workers < 1:
            raise ParameterError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.max_queue_depth < 0:
            raise ParameterError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )
        if self.latency_window < 1:
            raise ParameterError(
                f"latency_window must be >= 1, got {self.latency_window}"
            )
        if self.default_timeout_seconds is not None and self.default_timeout_seconds < 0:
            raise ParameterError(
                "default_timeout_seconds must be non-negative, got "
                f"{self.default_timeout_seconds}"
            )
        if self.breaker_failure_threshold is not None and self.breaker_failure_threshold < 1:
            raise ParameterError(
                "breaker_failure_threshold must be >= 1 (or None to disable), "
                f"got {self.breaker_failure_threshold}"
            )
        if self.breaker_cooldown_seconds <= 0:
            raise ParameterError(
                "breaker_cooldown_seconds must be > 0, got "
                f"{self.breaker_cooldown_seconds}"
            )


def _percentile(sorted_samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted, non-empty sequence.

    Canonical nearest-rank: the smallest sample with at least
    ``fraction * n`` samples at or below it, i.e. 1-indexed rank
    ``ceil(fraction * n)``.  The previous ``int(fraction * n)`` rounded the
    rank *up by one* exactly on the boundary cases (p50 of 1..100 answered
    51, p95 answered 96).
    """
    rank = math.ceil(fraction * len(sorted_samples))
    index = min(len(sorted_samples) - 1, max(0, rank - 1))
    return sorted_samples[index]


def _prometheus_name(parts: Sequence[str]) -> str:
    name = "_".join(part for part in parts if part)
    return "".join(ch if (ch.isalnum() or ch == "_") else "_" for ch in name)


def render_prometheus(
    metrics: Dict[str, object], prefix: str = "kplex"
) -> str:
    """Render a (possibly nested) metrics dict in Prometheus text format.

    Nested dicts flatten into underscore-joined metric names
    (``result_cache.hits`` becomes ``kplex_result_cache_hits``); ``None``
    and non-numeric leaves are skipped; booleans become 0/1 gauges.  The
    output is the version 0.0.4 exposition format every Prometheus scraper
    accepts, with one ``# TYPE`` line per sample.

    Labelled series and histogram ``_bucket``/``_sum``/``_count`` families
    are rendered separately by
    :meth:`repro.obs.MetricsRegistry.render_prometheus` (which escapes
    label values); :meth:`KPlexService.metrics_prometheus_text`
    concatenates both.
    """
    lines: List[str] = []

    def emit(parts: Sequence[str], value: object) -> None:
        if isinstance(value, dict):
            for key, nested in value.items():
                emit(list(parts) + [str(key)], nested)
            return
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)):
            return
        name = _prometheus_name(parts)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {value}")

    for key, value in metrics.items():
        emit([prefix, str(key)], value)
    return "\n".join(lines) + "\n"


class ServiceMetrics:
    """Thread-safe request counters plus bounded bucketed histograms.

    Latency, queue-wait, phase-duration, result-count and branch-call
    distributions live in fixed-bucket histograms inside ``self.registry``
    (a :class:`~repro.obs.MetricsRegistry`), so memory stays constant no
    matter how long the server runs; the old unbounded sample deques are
    gone.  The registry is shared with the HTTP layer for labelled
    per-graph/per-route series.
    """

    def __init__(
        self,
        latency_window: int = 2048,  # retained for compatibility; unused
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._lock = threading.Lock()
        self.registry = registry or MetricsRegistry()
        self._latency = self.registry.histogram(
            "request_latency_seconds",
            help_text="End-to-end latency of admitted requests",
        )
        self._queue_wait = self.registry.histogram(
            "queue_wait_seconds",
            help_text="Time admitted requests spent waiting for a worker",
        )
        self._result_count = self.registry.histogram(
            "result_count",
            buckets=DEFAULT_COUNT_BUCKETS,
            help_text="Maximal k-plexes returned per completed search",
        )
        self._branch_calls = self.registry.histogram(
            "branch_calls",
            buckets=DEFAULT_COUNT_BUCKETS,
            help_text="Branch-and-bound invocations per completed search",
        )
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.errors = 0
        self.in_flight = 0
        self.running = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.coalesced = 0
        self.timeouts = 0

    def record_admitted(self) -> None:
        """One request passed admission control."""
        with self._lock:
            self.admitted += 1
            self.in_flight += 1

    def record_started(self) -> None:
        """One admitted request left the queue and began executing."""
        with self._lock:
            self.running += 1

    def record_rejected(self) -> None:
        """One request was turned away by admission control."""
        with self._lock:
            self.rejected += 1

    def record_cancelled(self) -> None:
        """One admitted request was cancelled before it ran.

        Settles the in-flight gauge and counts an error, but records no
        latency sample — a fabricated 0.0 would drag the p50/p95 estimates
        down exactly when a backlog is being shed.
        """
        with self._lock:
            self.in_flight -= 1
            self.errors += 1

    def record_outcome(
        self,
        latency_seconds: float,
        outcome: Optional[str],
        termination: Optional[str] = None,
        error: bool = False,
        started: bool = True,
    ) -> None:
        """One admitted request finished (successfully or not).

        ``started=False`` settles a request that never reached
        :meth:`record_started` (e.g. a failed pool submission), so the
        ``running`` gauge stays balanced.
        """
        self._latency.observe(latency_seconds)
        with self._lock:
            self.in_flight -= 1
            if started:
                self.running -= 1
            if error:
                self.errors += 1
                return
            self.completed += 1
            if outcome == OUTCOME_HIT:
                self.cache_hits += 1
            elif outcome == OUTCOME_COALESCED:
                self.coalesced += 1
            elif outcome == OUTCOME_MISS:
                self.cache_misses += 1
            if termination == TERMINATION_TIMEOUT:
                self.timeouts += 1

    def record_queue_wait(self, seconds: float) -> None:
        """Time one admitted request spent queued before a worker ran it."""
        self._queue_wait.observe(max(0.0, seconds))

    def observe_response(self, response: EnumerationResponse) -> None:
        """Fold a completed response's search shape into the histograms."""
        self._result_count.observe(response.count)
        statistics = response.statistics
        if statistics is not None:
            self._branch_calls.observe(statistics.branch_calls)
            for phase, seconds in (
                ("preprocess", statistics.preprocess_seconds),
                ("search", statistics.search_seconds),
            ):
                self.registry.histogram(
                    "phase_duration_seconds",
                    labels={"phase": phase},
                    help_text="Per-phase duration of completed searches",
                ).observe(seconds)

    def queue_eta_seconds(self, workers: int) -> int:
        """Estimated seconds until the current backlog drains — the derived
        ``Retry-After`` value for admission-control rejections.

        ``(queued / workers + 1)`` waves of work at the observed p50 latency
        (0.5s assumed before any sample exists), clamped to [1, 60] so the
        header is always sane.
        """
        with self._lock:
            queued = max(0, self.in_flight - self.running)
        p50 = self._latency.quantile(0.50)
        if p50 is None:
            p50 = 0.5
        eta = (queued / max(1, workers) + 1.0) * p50
        return int(min(60, max(1, math.ceil(eta))))

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready counters plus histogram-estimated latency percentiles."""
        latency = self._latency
        samples = latency.count
        with self._lock:
            served = self.cache_hits + self.cache_misses + self.coalesced
            snapshot: Dict[str, object] = {
                "requests_total": self.admitted + self.rejected,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "errors": self.errors,
                "in_flight": self.in_flight,
                "running": self.running,
                # Admission pressure before 429s start: admitted requests
                # still waiting for a worker.
                "queued": max(0, self.in_flight - self.running),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "coalesced": self.coalesced,
                "timeouts": self.timeouts,
                "hit_rate": (
                    (self.cache_hits + self.coalesced) / served if served else 0.0
                ),
                "latency_samples": samples,
            }
        if samples:
            state = latency.snapshot()
            snapshot["latency_p50_seconds"] = latency.quantile(0.50)
            snapshot["latency_p95_seconds"] = latency.quantile(0.95)
            snapshot["latency_max_seconds"] = state.get("max", 0.0)
        return snapshot

    def to_prometheus_text(self, prefix: str = "kplex") -> str:
        """Render the snapshot counters in Prometheus exposition format."""
        return render_prometheus(self.snapshot(), prefix=prefix)


class _Inflight:
    """Rendezvous for concurrent identical misses (request coalescing)."""

    __slots__ = ("event", "response", "exception")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Optional[EnumerationResponse] = None
        self.exception: Optional[BaseException] = None


class KPlexService:
    """Concurrent, cached enumeration service over a graph catalog.

    >>> from repro.service import KPlexService
    >>> service = KPlexService()
    >>> service.catalog.register("toy", [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    CatalogEntry(name='toy', ...)
    >>> service.solve("toy", k=2, q=3).count       # miss: runs the search
    1
    >>> service.solve("toy", k=2, q=3).count       # hit: served from cache
    1

    (doctest shown for shape only — see ``examples/service_demo.py``.)
    """

    def __init__(
        self,
        catalog: Optional[GraphCatalog] = None,
        config: Optional[ServiceConfig] = None,
        engine: Optional[KPlexEngine] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.catalog = catalog or GraphCatalog(
            prepared_core_budget=self.config.prepared_core_budget,
            csr_backend=self.config.csr_backend,
        )
        self._engine = engine or KPlexEngine()
        self._result_cache: Optional[ResultCache] = (
            None
            if self.config.result_cache_entries == 0
            else ResultCache(
                max_entries=self.config.result_cache_entries,
                max_bytes=self.config.result_cache_bytes,
            )
        )
        self._seed_cache: Optional[SeedContextCache] = (
            None
            if self.config.seed_cache_entries == 0
            else SeedContextCache(
                max_entries=self.config.seed_cache_entries,
                max_bytes=self.config.seed_cache_bytes,
            )
        )
        self._metrics = ServiceMetrics(latency_window=self.config.latency_window)
        self._breaker: Optional[CircuitBreaker] = (
            None
            if self.config.breaker_failure_threshold is None
            else CircuitBreaker(
                failure_threshold=self.config.breaker_failure_threshold,
                cooldown_seconds=self.config.breaker_cooldown_seconds,
            )
        )
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._admission_lock = threading.Lock()
        self._outstanding = 0
        self._inflight: Dict[Hashable, _Inflight] = {}
        self._inflight_lock = threading.Lock()
        self._closed = False
        #: Optional callback ``(request, source)`` fired after a cache miss
        #: completes successfully (source ``"miss"``) or an async job
        #: succeeds (source ``"job"``).  The HTTP layer does not use this
        #: in-process hook directly — the cluster router warms peers from the
        #: ``X-KPlex-Cache`` response header — but embedders (and the tests)
        #: can observe the same signal without HTTP plumbing.
        self.warm_spec_hook: Optional[Callable[[EnumerationRequest, str], None]] = None

    # ------------------------------------------------------------------ #
    # Request construction
    # ------------------------------------------------------------------ #
    def request(
        self, graph: Union[str, Graph], k: int, q: int, **kwargs: object
    ) -> EnumerationRequest:
        """Build a validated request; ``graph`` may be a catalog name."""
        if isinstance(graph, str):
            # Labelled per-graph traffic counter.  Graph names are
            # user-supplied, so the Prometheus renderer escapes them.
            self._metrics.registry.counter(
                "graph_requests_total",
                labels={"graph": graph},
                help_text="Requests naming each catalog graph",
            ).inc()
        return EnumerationRequest(
            graph=self.catalog.resolve(graph), k=k, q=q, **kwargs  # type: ignore[arg-type]
        )

    def _coerce(
        self,
        request: Union[EnumerationRequest, str, Graph],
        k: Optional[int],
        q: Optional[int],
        kwargs: Dict[str, object],
    ) -> EnumerationRequest:
        if isinstance(request, EnumerationRequest):
            if k is not None or q is not None or kwargs:
                raise ParameterError(
                    "pass either a finished EnumerationRequest or "
                    "(graph, k, q, ...) keywords, not both"
                )
            return request
        if k is None or q is None:
            raise ParameterError("k and q are required when passing a graph or name")
        return self.request(request, k, q, **kwargs)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def submit(
        self,
        request: Union[EnumerationRequest, str, Graph],
        k: Optional[int] = None,
        q: Optional[int] = None,
        **kwargs: object,
    ) -> "Future[EnumerationResponse]":
        """Admit a request and return a future for its response.

        Raises :class:`ServiceOverloadError` when ``max_workers +
        max_queue_depth`` requests are already outstanding — graceful
        rejection is the service's backpressure signal.
        """
        if self._closed:
            raise ServiceClosedError(
                "the service is closed and no longer accepts submissions"
            )
        request = self._coerce(request, k, q, kwargs)
        # Admission is microseconds of lock work: it annotates the active
        # span instead of opening its own (span creation would dominate it).
        active_span = current_span()
        self.check_breaker()
        capacity = self.config.max_workers + self.config.max_queue_depth
        try:
            with self._admission_lock:
                if self._outstanding >= capacity:
                    self._metrics.record_rejected()
                    if active_span is not None:
                        active_span.set(admission_rejected=True)
                    raise ServiceOverloadError(
                        f"service at capacity: {self._outstanding} requests outstanding "
                        f"(max_workers={self.config.max_workers}, "
                        f"max_queue_depth={self.config.max_queue_depth})"
                    )
                self._outstanding += 1
                if active_span is not None:
                    active_span.set(outstanding=self._outstanding)
        except BaseException:
            # The request passed the breaker gate but never ran: release a
            # half-open probe slot it may hold, or the breaker jams open.
            if self._breaker is not None:
                self._breaker.cancel_probe()
            raise
        self._metrics.record_admitted()
        try:
            # Thread pools do not inherit contextvars: hand the active span
            # (and the submit instant, for the queue-wait time) to _execute.
            future = self._ensure_pool().submit(
                self._execute, request, active_span, time.time()
            )
        except BaseException:
            with self._admission_lock:
                self._outstanding -= 1
            self._metrics.record_outcome(0.0, None, error=True, started=False)
            if self._breaker is not None:
                self._breaker.cancel_probe()
            raise
        future.add_done_callback(self._on_done)
        return future

    def solve(
        self,
        request: Union[EnumerationRequest, str, Graph],
        k: Optional[int] = None,
        q: Optional[int] = None,
        **kwargs: object,
    ) -> EnumerationResponse:
        """Synchronous :meth:`submit` — blocks until the response is ready.

        Accepts either a finished :class:`EnumerationRequest` or a catalog
        name / graph plus ``k``, ``q`` and request keywords.  Do not call
        from inside another request's solver (it would occupy two workers).
        """
        return self.submit(request, k, q, **kwargs).result()

    def solve_many(
        self,
        requests: Iterable[Union[EnumerationRequest, str, Graph]],
    ) -> List[EnumerationResponse]:
        """Solve a batch, throttled to the service's admission capacity.

        Responses align index-for-index with ``requests``.  Submission is
        paced so the batch itself never trips admission control; rejections
        can still happen when *other* clients keep the service saturated.
        """
        coerced = [self._coerce(request, None, None, {}) for request in requests]
        results: List[Optional[EnumerationResponse]] = [None] * len(coerced)
        capacity = max(1, self.config.max_workers + self.config.max_queue_depth - 1)
        pending: Dict["Future[EnumerationResponse]", int] = {}
        index = 0
        while index < len(coerced) or pending:
            while index < len(coerced) and len(pending) < capacity:
                try:
                    future = self.submit(coerced[index])
                except ServiceOverloadError:
                    if not pending:
                        raise
                    break
                pending[future] = index
                index += 1
            if not pending:
                continue
            done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
            for future in done:
                results[pending.pop(future)] = future.result()
        return results  # type: ignore[return-value]

    def stream_run(
        self,
        request: EnumerationRequest,
        cancel: Optional["CancellationToken"] = None,
        on_progress: Optional[Callable] = None,
    ):
        """Stream a request through the engine with the service's policies.

        Applies the service's default timeout and seed-context-cache
        injection, then returns the engine's lazy ``(iterator, outcome)``
        pair (see :meth:`KPlexEngine.stream_run`).  Deliberately bypasses
        the worker pool, admission control and the result cache: the async
        job subsystem (:mod:`repro.jobs`) carries its own concurrency and
        queue budget, and streamed results are consumed incrementally
        rather than materialised into a cacheable response.
        """
        if self._closed:
            raise ServiceClosedError(
                "the service is closed and no longer accepts submissions"
            )
        request = self._apply_defaults(request)
        return self._engine.stream_run(
            self._inject_seed_cache(request), cancel=cancel, on_progress=on_progress
        )

    def invalidate(self, name: str) -> int:
        """Retire every cached artefact of a catalog graph; return its epoch.

        Bumps the graph's epoch (so stale keys can never match again) and
        eagerly drops its result/seed-context cache entries to free their
        budget immediately.
        """
        entry = self.catalog.entry(name)
        epoch = self.catalog.invalidate(name)
        if self._result_cache is not None:
            self._result_cache.invalidate_graph(entry.graph)
        if self._seed_cache is not None:
            self._seed_cache.invalidate_graph(entry.graph)
        return epoch

    def check_breaker(self) -> None:
        """Raise :class:`CircuitOpenError` while the circuit breaker sheds load.

        The admission gate shared by the sync path (:meth:`submit`) and the
        async job path (:class:`~repro.jobs.manager.JobManager`).  In the
        half-open state exactly one caller per cooldown window passes as the
        probe; its recorded outcome closes or re-opens the circuit.
        """
        if self._breaker is not None and not self._breaker.allow():
            retry_after = max(1.0, self._breaker.retry_after_seconds())
            self._metrics.record_rejected()
            raise CircuitOpenError(
                "circuit breaker open: the enumeration backend is unhealthy "
                f"(state={self._breaker.state}); retry in {retry_after:.0f}s",
                retry_after=retry_after,
            )

    @property
    def breaker(self) -> Optional[CircuitBreaker]:
        """The service's circuit breaker (``None`` when disabled)."""
        return self._breaker

    def retry_after_hint(self) -> int:
        """Seconds a rejected client should wait before retrying.

        Breaker open → the remaining cooldown.  Otherwise (admission-control
        429s) → an estimate of when the queue will have drained: queue waves
        ahead of the caller times the observed p50 latency, clamped to
        [1, 60].
        """
        if self._breaker is not None:
            remaining = self._breaker.retry_after_seconds()
            if remaining > 0:
                return max(1, math.ceil(remaining))
        return self._metrics.queue_eta_seconds(self.config.max_workers)

    def metrics(self) -> Dict[str, object]:
        """One JSON-ready snapshot of service, cache and catalog state."""
        snapshot = self._metrics.snapshot()
        snapshot["result_cache"] = (
            self._result_cache.stats() if self._result_cache is not None else None
        )
        snapshot["seed_context_cache"] = (
            self._seed_cache.stats() if self._seed_cache is not None else None
        )
        snapshot["catalog"] = {
            "graphs": len(self.catalog),
            "memory_bytes": self.catalog.total_memory_bytes(),
        }
        resilience = resilience_stats().snapshot()
        # Promoted to a top-level counter so the Prometheus rendering exposes
        # `kplex_recoveries_total` — the headline "we survived a worker
        # death" signal dashboards and the CI chaos smoke alert on.
        snapshot["recoveries_total"] = resilience["pool_recoveries"]
        snapshot["resilience"] = resilience
        snapshot["breaker"] = (
            self._breaker.snapshot() if self._breaker is not None else None
        )
        snapshot["telemetry"] = self.telemetry.snapshot()
        return snapshot

    @property
    def telemetry(self) -> MetricsRegistry:
        """Shared histogram/counter registry (also used by the HTTP layer)."""
        return self._metrics.registry

    def metrics_prometheus_text(self, prefix: str = "kplex") -> str:
        """The full :meth:`metrics` snapshot in Prometheus text format.

        Flat gauges from the JSON snapshot come first, then the registry's
        labelled counter and histogram (``_bucket``/``_sum``/``_count``)
        families with escaped label values.
        """
        payload = self.metrics()
        payload.pop("telemetry", None)
        return render_prometheus(payload, prefix=prefix) + self.telemetry.render_prometheus(
            prefix=prefix
        )

    @property
    def result_cache(self) -> Optional[ResultCache]:
        """The response cache (``None`` when disabled)."""
        return self._result_cache

    @property
    def seed_context_cache(self) -> Optional[SeedContextCache]:
        """The seed-context tier (``None`` when disabled)."""
        return self._seed_cache

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` has begun; submissions are rejected."""
        return self._closed

    def close(self, drain: bool = True) -> None:
        """Stop accepting requests and shut the worker pool down.

        With ``drain=True`` (the default) every admitted request — running
        *and* queued — finishes normally and its future completes; new
        submissions are rejected with :class:`ServiceClosedError` from the
        moment the call starts.  With ``drain=False`` queued-but-unstarted
        requests are cancelled (their futures raise ``CancelledError``) and
        only the currently running ones are awaited.  Idempotent.
        """
        with self._pool_lock:
            # Under the pool lock so _ensure_pool's closed-check and pool
            # creation can never interleave with shutdown.
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=not drain)

    def __enter__(self) -> "KPlexService":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Execution path
    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                if self._closed:
                    raise ServiceClosedError(
                        "the service is closed and no longer accepts submissions"
                    )
                self._pool = ThreadPoolExecutor(
                    max_workers=self.config.max_workers,
                    thread_name_prefix="kplex-service",
                )
            return self._pool

    def _on_done(self, future: "Future[EnumerationResponse]") -> None:
        with self._admission_lock:
            self._outstanding -= 1
        if future.cancelled():
            # close(drain=False) cancelled it before _execute ran; settle the
            # in-flight gauge the admission path already incremented.
            self._metrics.record_cancelled()

    def _apply_defaults(self, request: EnumerationRequest) -> EnumerationRequest:
        if (
            self.config.default_timeout_seconds is not None
            and request.timeout_seconds is None
        ):
            request = request.with_changes(
                timeout_seconds=self.config.default_timeout_seconds
            )
        return request

    def _inject_seed_cache(self, request: EnumerationRequest) -> EnumerationRequest:
        if (
            self._seed_cache is None
            or request.query_vertices is not None
            or "seed_context_cache" in request.options
        ):
            return request
        # Only the configurable branch-and-bound adapters know how to replay
        # seed contexts; other solvers would reject (or ignore) the option.
        if not issubclass(get_solver(request.solver), _ConfigurableSolver):
            return request
        options = dict(request.options)
        options["seed_context_cache"] = self._seed_cache
        return request.with_changes(options=options)

    def _run(self, request: EnumerationRequest) -> EnumerationResponse:
        with span("enumerate", solver=request.solver):
            return self._engine.solve(self._inject_seed_cache(request))

    def _execute(
        self,
        request: EnumerationRequest,
        parent_span: Optional[object] = None,
        submitted_at: Optional[float] = None,
    ) -> EnumerationResponse:
        # Re-enter the submitter's trace context: worker threads inherit
        # nothing, so the span captured in submit() is activated explicitly.
        with activate(parent_span):  # type: ignore[arg-type]
            return self._execute_traced(request, submitted_at)

    def _execute_traced(
        self, request: EnumerationRequest, submitted_at: Optional[float] = None
    ) -> EnumerationResponse:
        started = time.perf_counter()
        now = time.time()
        if submitted_at is not None:
            self._metrics.record_queue_wait(now - submitted_at)
        self._metrics.record_started()
        with span("execute", solver=request.solver) as execute_span:
            if submitted_at is not None and execute_span.recorded:
                # An attribute, not a child span: the wait is pure queueing
                # with no inner structure, and the cached path is too hot to
                # pay span bookkeeping for it.
                execute_span.attributes["queue_wait_ms"] = round(
                    (now - submitted_at) * 1000.0, 3
                )
            outcome: Optional[str] = None
            termination: Optional[str] = None
            try:
                request = self._apply_defaults(request)
                response, outcome = self._solve_with_cache(request)
                termination = response.termination
                execute_span.set(outcome=outcome, termination=termination)
                self._metrics.observe_response(response)
                return response
            except BaseException as exc:
                self._metrics.record_outcome(
                    time.perf_counter() - started, outcome, error=True
                )
                log_event(
                    "request_error",
                    solver=request.solver,
                    error=type(exc).__name__,
                )
                # Bad parameters say nothing about backend health; everything
                # else (solver crashes, poison tasks, engine errors) counts
                # toward opening the circuit.
                if self._breaker is not None and not isinstance(exc, ParameterError):
                    self._breaker.record_failure()
                raise
            finally:
                # Success path only: the error path already recorded itself
                # (and left termination unset).
                if termination is not None:
                    self._metrics.record_outcome(
                        time.perf_counter() - started, outcome, termination
                    )
                    if self._breaker is not None:
                        self._breaker.record_success()

    def notify_warm_spec(self, request: EnumerationRequest, source: str) -> None:
        """Fire :attr:`warm_spec_hook` for a freshly computed request spec.

        Called on the cache-miss leader path and on async-job success (jobs
        stream past the result cache, so every finished job is new work).
        The hook is observational: any exception it raises is logged and
        swallowed so peer warming can never fail a request.
        """
        hook = self.warm_spec_hook
        if hook is None:
            return
        try:
            hook(request, source)
        except Exception as exc:  # pragma: no cover - defensive
            log_event(
                "warm_spec_hook_error",
                source=source,
                error=type(exc).__name__,
            )

    def _solve_with_cache(
        self, request: EnumerationRequest
    ) -> "tuple[EnumerationResponse, str]":
        cache = self._result_cache
        if cache is None:
            return self._run(request), OUTCOME_MISS
        # Derive the key once, before the run: it snapshots the graph epoch
        # at admission time, so an invalidate() racing with the search makes
        # the eventual store() land under the old (unmatchable) epoch.
        key = result_cache_key(request)
        cached = cache.lookup(request, key=key)
        # Same hot-path economy as queue_wait: the lookup is a dict probe,
        # so it rides as an attribute on the surrounding execute span.
        active = current_span()
        if active is not None:
            active.set(cache_hit=cached is not None)
        if cached is not None:
            return cached, OUTCOME_HIT
        with self._inflight_lock:
            entry = self._inflight.get(key)
            leader = entry is None
            if leader:
                entry = _Inflight()
                self._inflight[key] = entry
        if leader:
            try:
                response = self._run(request)
                cache.store(request, response, key=key)
                entry.response = response
                self.notify_warm_spec(request, OUTCOME_MISS)
                return response, OUTCOME_MISS
            except BaseException as exc:
                entry.exception = exc
                raise
            finally:
                with self._inflight_lock:
                    self._inflight.pop(key, None)
                entry.event.set()
        # Follower: wait for the leader's answer instead of duplicating the
        # search (thundering-herd protection).
        with span("coalesce_wait"):
            entry.event.wait()
        if entry.exception is not None:
            raise entry.exception
        response = entry.response
        assert response is not None
        if response.termination in (TERMINATION_COMPLETED, TERMINATION_RESULT_LIMIT):
            return response, OUTCOME_COALESCED
        # The leader's run was cut short (timeout/cancel) — its partial
        # answer must not be recycled for a request that may have a larger
        # budget; run independently.
        return self._run(request), OUTCOME_MISS
