"""Branch-and-bound search over one seed subgraph (Algorithm 3).

:class:`BranchSearcher` mines one sub-task ``⟨P, C, X⟩`` at a time.  All sets
are bitsets over the local index space of the seed subgraph, except the
*external* part of the exclusive set (vertices preceding the seed in the
degeneracy ordering) which is a bitset over
``SeedContext.external_vertices``.

The searcher implements both algorithm variants of the paper:

* ``Ours`` (``branching="pivot"``): when the saturation-maximising pivot
  falls inside ``P`` it is re-picked among the pivot's non-neighbours in
  ``C`` (lines 15–16), and the include-branch is pruned whenever the Eq (3)
  upper bound drops below ``q`` (lines 17–19).
* ``Ours_P`` (``branching="faplexen"``): when the pivot falls inside ``P``
  the search instead produces the ``sup_P(v_p) + 1`` branches of
  Eq (4)–(6), the branching rule of FaPlexen / ListPlex.

A *timeout* hook supports the parallel executor of Section 6: when a
deadline is exceeded the searcher stops recursing and emits the pending
branch states to a task sink, turning a straggler sub-task into many smaller
tasks that other workers can steal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from ..graph.bitset import bits_to_list, iter_bits
from .bounds import fp_style_bound, support_bound
from .config import BRANCHING_FAPLEXEN, UPPER_BOUND_FP, EnumerationConfig
from .pivot import repick_pivot_from_candidates, select_pivot
from .seeds import SeedContext, SubTask
from .stats import SearchStatistics

ResultCallback = Callable[[int], None]


@dataclass(frozen=True)
class BranchState:
    """A frozen search node, used to hand work between workers.

    ``minimum_degree`` caches ``min_{u ∈ P} d_{G_i}(u)`` so the Theorem 5.3
    bound does not need to rescan ``P`` at every node.
    """

    p_mask: int
    c_mask: int
    x_mask: int
    x_external_mask: int
    minimum_degree: int


class BranchSearcher:
    """Branch-and-bound search engine for one seed context."""

    def __init__(
        self,
        context: SeedContext,
        k: int,
        q: int,
        config: EnumerationConfig,
        stats: SearchStatistics,
        on_result: ResultCallback,
        timeout: Optional[float] = None,
        task_sink: Optional[Callable[[BranchState], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.context = context
        self.k = k
        self.q = q
        self.config = config
        self.stats = stats
        self.on_result = on_result
        self.timeout = timeout
        self.task_sink = task_sink
        self.clock = clock
        self._deadline: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def run_subtask(self, task: SubTask) -> None:
        """Mine one initial sub-task produced by Algorithm 2."""
        state = BranchState(
            p_mask=task.p_mask,
            c_mask=task.c_mask,
            x_mask=task.x_mask,
            x_external_mask=task.x_external_mask,
            minimum_degree=self._minimum_degree(task.p_mask),
        )
        self.run_state(state)

    def run_state(self, state: BranchState) -> None:
        """Mine a (possibly resumed) branch state, honouring the timeout."""
        if self.timeout is not None:
            self._deadline = self.clock() + self.timeout
        else:
            self._deadline = None
        self._branch(
            state.p_mask,
            state.c_mask,
            state.x_mask,
            state.x_external_mask,
            state.minimum_degree,
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _minimum_degree(self, p_mask: int) -> int:
        degrees = self.context.degrees
        members = bits_to_list(p_mask)
        if not members:
            return self.context.size
        return min(degrees[u] for u in members)

    def _saturated_mask(self, p_mask: int, p_size: int) -> int:
        adjacency = self.context.subgraph.adjacency
        target = p_size - self.k
        saturated = 0
        for u in iter_bits(p_mask):
            if (adjacency[u] & p_mask).bit_count() == target:
                saturated |= 1 << u
        return saturated

    def _refine(self, pool: int, rows: List[int], p_mask: int, threshold: int, saturated: int) -> int:
        """Keep the pool members whose addition keeps ``P`` a k-plex."""
        refined = 0
        for v in iter_bits(pool):
            row = rows[v]
            if (row & p_mask).bit_count() >= threshold and (saturated & ~row) == 0:
                refined |= 1 << v
        return refined

    def _is_maximal_against(self, pc_mask: int, pc_size: int, x_mask: int, x_external: int) -> bool:
        """Return ``True`` when no exclusive vertex can extend ``pc_mask``."""
        adjacency = self.context.subgraph.adjacency
        threshold = pc_size + 1 - self.k
        saturated = self._saturated_mask(pc_mask, pc_size)
        for v in iter_bits(x_mask):
            row = adjacency[v]
            if (row & pc_mask).bit_count() >= threshold and (saturated & ~row) == 0:
                return False
        external_rows = self.context.external_adjacency
        for index in iter_bits(x_external):
            row = external_rows[index]
            if (row & pc_mask).bit_count() >= threshold and (saturated & ~row) == 0:
                return False
        return True

    def _can_add(self, vertex_row: int, p_mask: int, p_size: int, saturated: int) -> bool:
        return (vertex_row & p_mask).bit_count() >= p_size + 1 - self.k and (
            saturated & ~vertex_row
        ) == 0

    def _recurse(
        self, p_mask: int, c_mask: int, x_mask: int, x_external: int, minimum_degree: int
    ) -> None:
        """Recurse into a child node, or hand it to the task sink on timeout."""
        if (
            self._deadline is not None
            and self.task_sink is not None
            and self.clock() >= self._deadline
        ):
            self.task_sink(
                BranchState(p_mask, c_mask, x_mask, x_external, minimum_degree)
            )
            return
        self._branch(p_mask, c_mask, x_mask, x_external, minimum_degree)

    # ------------------------------------------------------------------ #
    # Algorithm 3
    # ------------------------------------------------------------------ #
    def _branch(
        self, p_mask: int, c_mask: int, x_mask: int, x_external: int, minimum_degree: int
    ) -> None:
        context = self.context
        adjacency = context.subgraph.adjacency
        stats = self.stats
        stats.record_branch(context.seed_vertex)

        k = self.k
        q = self.q
        p_size = p_mask.bit_count()
        threshold = p_size + 1 - k
        saturated = self._saturated_mask(p_mask, p_size)

        # Lines 2-3: keep only the candidates / exclusive vertices that still
        # form a k-plex together with P.
        c_mask = self._refine(c_mask, adjacency, p_mask, threshold, saturated)
        x_mask = self._refine(x_mask, adjacency, p_mask, threshold, saturated)
        x_external = self._refine(
            x_external, context.external_adjacency, p_mask, threshold, saturated
        )

        # Lines 4-6: no candidate left.
        if c_mask == 0:
            if x_mask == 0 and x_external == 0:
                if p_size >= q:
                    self.on_result(p_mask)
                    stats.outputs += 1
            else:
                stats.maximality_rejections += 1
            return

        # Lines 7-10: pivot selection.
        pivot, pivot_in_p, pivot_degree_pc = select_pivot(context.subgraph, p_mask, c_mask)
        pc_size = p_size + c_mask.bit_count()

        # Lines 11-14: P ∪ C is already a k-plex.
        if pivot_degree_pc >= pc_size - k:
            pc_mask = p_mask | c_mask
            if pc_size >= q:
                if self._is_maximal_against(pc_mask, pc_size, x_mask, x_external):
                    self.on_result(pc_mask)
                    stats.outputs += 1
                else:
                    stats.maximality_rejections += 1
            return

        # Lines 15-16 / Ours_P branching.
        if pivot_in_p:
            if self.config.branching == BRANCHING_FAPLEXEN:
                self._branch_faplexen(
                    p_mask, c_mask, x_mask, x_external, minimum_degree, pivot
                )
                return
            repicked = repick_pivot_from_candidates(context.subgraph, p_mask, c_mask, pivot)
            if repicked is None:
                # Defensive fallback; unreachable when P is a valid k-plex
                # because a non-saturated minimum-degree pivot always has a
                # non-neighbour left in C (see Section 4 of the paper).
                repicked = (c_mask & -c_mask).bit_length() - 1
            pivot = repicked

        pivot_bit = 1 << pivot

        # Lines 17-19: include branch, guarded by the Eq (3) upper bound.
        include_allowed = True
        if self.config.use_upper_bound and q > 0:
            if self.config.upper_bound_method == UPPER_BOUND_FP:
                packing_bound = fp_style_bound(context.subgraph, p_mask, c_mask, pivot, k)
            else:
                packing_bound = support_bound(context.subgraph, p_mask, c_mask, pivot, k)
            degree_bound_value = min(minimum_degree, context.degrees[pivot]) + k
            if min(packing_bound, degree_bound_value) < q:
                include_allowed = False
                stats.branches_pruned_by_upper_bound += 1

        if include_allowed:
            child_c = c_mask & ~pivot_bit
            child_x = x_mask
            if context.pair_ok is not None:
                allowed = context.pair_ok[pivot]
                removed = (child_c & ~allowed).bit_count() + (child_x & ~allowed).bit_count()
                if removed:
                    stats.candidates_pruned_by_pairs += removed
                child_c &= allowed
                child_x &= allowed
            self._recurse(
                p_mask | pivot_bit,
                child_c,
                child_x,
                x_external,
                min(minimum_degree, context.degrees[pivot]),
            )

        # Line 20: exclude branch (always taken).
        self._recurse(p_mask, c_mask & ~pivot_bit, x_mask | pivot_bit, x_external, minimum_degree)

    # ------------------------------------------------------------------ #
    # Ours_P: Eq (4)-(6) branching
    # ------------------------------------------------------------------ #
    def _branch_faplexen(
        self,
        p_mask: int,
        c_mask: int,
        x_mask: int,
        x_external: int,
        minimum_degree: int,
        pivot: int,
    ) -> None:
        context = self.context
        adjacency = context.subgraph.adjacency
        k = self.k
        p_size = p_mask.bit_count()
        support = k - (p_size - (adjacency[pivot] & p_mask).bit_count())
        non_neighbors = bits_to_list(c_mask & ~adjacency[pivot] & ~(1 << pivot))
        if not non_neighbors:
            # Cannot happen for a valid pivot (it would make P ∪ C a k-plex),
            # handled defensively by falling back to the binary branching.
            fallback = (c_mask & -c_mask).bit_length() - 1
            fallback_bit = 1 << fallback
            self._recurse(
                p_mask | fallback_bit,
                c_mask & ~fallback_bit,
                x_mask,
                x_external,
                min(minimum_degree, context.degrees[fallback]),
            )
            self._recurse(p_mask, c_mask & ~fallback_bit, x_mask | fallback_bit, x_external, minimum_degree)
            return
        support = max(1, min(support, len(non_neighbors)))

        # Branch 1 (Eq (4)): exclude w_1.
        first = non_neighbors[0]
        self._recurse(
            p_mask,
            c_mask & ~(1 << first),
            x_mask | (1 << first),
            x_external,
            minimum_degree,
        )

        # Branches 2..support (Eq (5)) and the final branch (Eq (6)).
        current_p = p_mask
        current_c = c_mask
        current_x = x_mask
        current_min = minimum_degree
        for index in range(1, support + 1):
            # Include w_index (1-based: w_1 .. w_support) into P.
            w = non_neighbors[index - 1]
            w_bit = 1 << w
            size_before = current_p.bit_count()
            saturated = self._saturated_mask(current_p, size_before)
            if not self._can_add(adjacency[w], current_p, size_before, saturated):
                # P ∪ {w_1..w_index} is not a k-plex; by hereditariness no
                # later branch (which includes this set) can produce results.
                return
            current_p |= w_bit
            current_c &= ~w_bit
            current_min = min(current_min, context.degrees[w])
            if context.pair_ok is not None:
                allowed = context.pair_ok[w]
                removed = (current_c & ~allowed).bit_count() + (current_x & ~allowed).bit_count()
                if removed:
                    self.stats.candidates_pruned_by_pairs += removed
                current_c &= allowed
                current_x &= allowed

            if index < support:
                # Eq (5): exclude w_{index+1}.
                excluded = non_neighbors[index]
                excluded_bit = 1 << excluded
                self._recurse(
                    current_p,
                    current_c & ~excluded_bit,
                    current_x | excluded_bit,
                    x_external,
                    current_min,
                )
            else:
                # Eq (6): include w_1..w_support and drop the remaining
                # non-neighbours of the (now saturated) pivot from C.
                remaining = 0
                for other in non_neighbors[support:]:
                    remaining |= 1 << other
                self._recurse(
                    current_p,
                    current_c & ~remaining,
                    current_x,
                    x_external,
                    current_min,
                )
