"""Shared storage conventions of the CSR backends.

Both CSR backends (:mod:`repro.graph.csr_backend_array` and
:mod:`repro.graph.csr_backend_numpy`) and the shared-memory transport
(:mod:`repro.graph.shared`) must agree byte-for-byte on how the flat
adjacency arrays are laid out, or cross-backend handoffs silently corrupt
vertex ids.  This module is the single source of truth:

* **Typecodes are derived from measured item sizes**, never hardcoded.
  ``array("l")`` is 8 bytes on LP64 Unix but 4 bytes on LLP64 Windows, so a
  literal ``"l"`` for the offsets array would overflow at 2^31 directed
  edges on one platform and not the other.  :func:`offset_typecode` picks
  the first signed typecode with at least 8 bytes; :func:`neighbor_typecode`
  the first with at least 4 (vertex ids are bounded by ``n``, not ``2m``).
* The numpy backend and the shared-memory segments derive their dtypes /
  struct formats from the *same* item sizes (:func:`offset_itemsize`,
  :func:`index_itemsize`), so an array-backed writer and a numpy-backed
  reader always agree on the layout.
* :func:`normalize_adjacency` is the one construction-time validator: it
  enforces the sorted/deduplicated row invariant ``has_edge`` relies on and
  (unless the caller opts out) rejects self-loops, out-of-range ids and
  asymmetric input that would silently produce a wrong ``num_edges``.
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_left
from typing import Iterable, List, Sequence, Tuple

from ..errors import GraphError

#: Signed array typecodes from narrowest to widest (portable candidates).
_SIGNED_TYPECODES = ("i", "l", "q")


def _first_typecode(minimum_bytes: int) -> str:
    for typecode in _SIGNED_TYPECODES:
        if array(typecode).itemsize >= minimum_bytes:
            return typecode
    raise GraphError(  # pragma: no cover - no such platform
        f"no signed array typecode with at least {minimum_bytes} bytes"
    )


def offset_typecode() -> str:
    """Typecode of the row-offset array (holds values up to ``2m``; >= 8 bytes)."""
    return _OFFSET_TYPECODE


def neighbor_typecode() -> str:
    """Typecode of vertex-id arrays (holds values up to ``n - 1``; >= 4 bytes)."""
    return _NEIGHBOR_TYPECODE


_OFFSET_TYPECODE = _first_typecode(8)
_NEIGHBOR_TYPECODE = _first_typecode(4)


def offset_itemsize() -> int:
    """Bytes per offsets entry (identical across backends and platforms >= 8)."""
    return array(_OFFSET_TYPECODE).itemsize


def index_itemsize() -> int:
    """Bytes per vertex-id entry (identical across backends)."""
    return array(_NEIGHBOR_TYPECODE).itemsize


def memoryview_format(itemsize: int) -> str:
    """The single-character struct format for casting buffers of ``itemsize``.

    Used by the shared-memory attach path to view a mapped segment as a flat
    integer sequence without copying.  Derived from the same typecode table
    as everything else, so a segment written from an ``array`` is readable
    through a cast (or a numpy ``frombuffer``) bit-for-bit.
    """
    for typecode in _SIGNED_TYPECODES:
        if array(typecode).itemsize == itemsize:
            return typecode
    raise GraphError(f"no signed integer format with itemsize {itemsize}")


def numpy_offset_dtype():
    """The numpy dtype matching :func:`offset_typecode` byte-for-byte."""
    import numpy

    return numpy.dtype(f"i{offset_itemsize()}")


def numpy_index_dtype():
    """The numpy dtype matching :func:`neighbor_typecode` byte-for-byte."""
    import numpy

    return numpy.dtype(f"i{index_itemsize()}")


# --------------------------------------------------------------------------- #
# Construction-time validation
# --------------------------------------------------------------------------- #
#: Directed edges sampled by the symmetry spot check (kept cheap on purpose).
_SYMMETRY_SAMPLES = 128


def normalize_adjacency(
    adjacency: Sequence[Iterable[int]], validate: bool = True
) -> Tuple[List[List[int]], int]:
    """Return ``(sorted deduplicated rows, total directed edges)``.

    With ``validate=True`` (the default for untrusted input) this

    * rejects out-of-range vertex ids and self-loops,
    * *enforces* the sorted/deduplicated row invariant binary-search
      ``has_edge`` depends on (duplicate edges previously inflated
      ``num_edges`` silently),
    * rejects input whose directed-edge total is odd (guaranteed
      asymmetric — the old code floor-divided it into a wrong edge count),
    * spot-checks symmetry on a deterministic sample of directed edges.

    ``validate=False`` is the trusted-caller fast path (e.g. rows already
    produced from a validated :class:`~repro.graph.graph.Graph`): rows are
    sorted but otherwise taken as given.
    """
    n = len(adjacency)
    rows: List[List[int]] = []
    total = 0
    for vertex, row in enumerate(adjacency):
        sorted_row = sorted(row)
        if validate and sorted_row:
            deduped: List[int] = []
            previous = None
            for neighbor in sorted_row:
                if not 0 <= neighbor < n:
                    raise GraphError(
                        f"neighbour {neighbor} of vertex {vertex} is out of range"
                    )
                if neighbor == vertex:
                    raise GraphError(f"self-loop at vertex {vertex}")
                if neighbor != previous:
                    deduped.append(neighbor)
                previous = neighbor
            sorted_row = deduped
        rows.append(sorted_row)
        total += len(sorted_row)
    if validate:
        if total % 2:
            raise GraphError(
                "adjacency is asymmetric: the directed edge count is odd "
                f"({total}); every undirected edge must appear in both rows"
            )
        _symmetry_spot_check(rows, total)
    return rows, total


def _symmetry_spot_check(rows: Sequence[Sequence[int]], total: int) -> None:
    """Check ``u in rows[v]`` for a deterministic sample of edges ``(v, u)``."""
    if total == 0:
        return
    step = max(1, total // _SYMMETRY_SAMPLES)
    cursor = 0
    for vertex, row in enumerate(rows):
        length = len(row)
        if not length:
            continue
        # Global directed-edge indices [cursor, cursor + length) live in this
        # row; probe the ones hitting the sampling grid.
        first = ((cursor + step - 1) // step) * step
        for index in range(first - cursor, length, step):
            neighbor = row[index]
            reverse = rows[neighbor]
            position = bisect_left(reverse, vertex)
            if position >= len(reverse) or reverse[position] != vertex:
                raise GraphError(
                    f"adjacency is asymmetric: edge ({vertex}, {neighbor}) has "
                    f"no reverse entry"
                )
        cursor += length


# --------------------------------------------------------------------------- #
# Per-thread scratch buffers
# --------------------------------------------------------------------------- #
class Scratch(threading.local):
    """Per-thread scratch buffer sized to the graph (lazily grown)."""

    def __init__(self) -> None:
        self.position: array = array(neighbor_typecode())

    def position_array(self, size: int) -> array:
        """Return the position array, every entry guaranteed to be ``-1``."""
        if len(self.position) < size:
            self.position = array(neighbor_typecode(), [-1]) * size
        return self.position
