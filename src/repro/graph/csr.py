"""Compressed sparse row (CSR) graph kernel — backend facade.

The set-backed :class:`~repro.graph.graph.Graph` is convenient for
correctness-oriented code, but the enumeration hot path — (q-k)-core
shrinking, degeneracy ordering and per-seed two-hop subgraph construction —
spends most of its time walking adjacency.  The CSR kernel stores the same
graph as two flat integer arrays (the layout the paper's C++ baselines such
as ListPlex/FaPlexen use) and comes in two interchangeable backends:

* ``array`` — :class:`~repro.graph.csr_backend_array.CSRGraph`, pure
  stdlib, always available;
* ``numpy`` — :class:`~repro.graph.csr_backend_numpy.NumpyCSRGraph`,
  vectorised kernels (blocked two-hop sweep, bincount core peeling,
  packbits projections), used by default whenever numpy imports.

Both backends share one storage convention (:mod:`repro.graph.csr_types`:
typecodes/dtypes derived from measured item sizes, sorted-row invariant,
validation) and must produce bit-identical results — the cross-backend
equivalence suite in ``tests/test_csr_backends.py`` enforces it.

Backend selection, most specific wins:

1. an explicit ``backend=`` argument to :func:`build_csr` (or the
   ``csr_backend`` knobs on ``prepare()`` / the engine / the service);
2. a process-wide default installed with :func:`set_default_csr_backend`
   (the CLI's ``--csr-backend`` flag);
3. the ``REPRO_CSR_BACKEND`` environment variable (used by CI to force the
   array fallback);
4. ``numpy`` when importable, else ``array``.
"""

from __future__ import annotations

import os
from typing import List, Optional, Type

from ..errors import GraphError
from .csr_backend_array import CSRGraph
from .csr_types import (
    index_itemsize,
    neighbor_typecode,
    normalize_adjacency,
    numpy_index_dtype,
    numpy_offset_dtype,
    offset_itemsize,
    offset_typecode,
)
from .graph import Graph

#: Environment variable overriding the automatic backend choice.
CSR_BACKEND_ENV = "REPRO_CSR_BACKEND"

try:  # the numpy backend is optional by design
    from .csr_backend_numpy import NumpyCSRGraph
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    NumpyCSRGraph = None  # type: ignore[assignment]

_BACKENDS = {"array": CSRGraph}
if NumpyCSRGraph is not None:
    _BACKENDS["numpy"] = NumpyCSRGraph

#: Process-wide default installed via :func:`set_default_csr_backend`.
_CONFIGURED_DEFAULT: Optional[str] = None


def available_csr_backends() -> List[str]:
    """Names of the CSR backends importable in this process."""
    return sorted(_BACKENDS)


def set_default_csr_backend(backend: Optional[str]) -> str:
    """Install a process-wide default backend; returns the resolved name.

    ``None`` or ``"auto"`` restores automatic resolution (environment
    variable, then numpy-if-available).
    """
    global _CONFIGURED_DEFAULT
    if backend is None or backend == "auto":
        _CONFIGURED_DEFAULT = None
    else:
        _CONFIGURED_DEFAULT = _validated(backend)
    return default_csr_backend()


def default_csr_backend() -> str:
    """The backend used when no explicit choice is supplied."""
    if _CONFIGURED_DEFAULT is not None:
        return _CONFIGURED_DEFAULT
    env = os.environ.get(CSR_BACKEND_ENV)
    if env and env != "auto":
        return _validated(env)
    return "numpy" if "numpy" in _BACKENDS else "array"


def resolve_csr_backend(backend: Optional[str] = None) -> str:
    """Resolve ``backend`` (``None``/``"auto"`` = the current default)."""
    if backend is None or backend == "auto":
        return default_csr_backend()
    return _validated(backend)


def _validated(backend: str) -> str:
    if backend not in ("array", "numpy"):
        raise GraphError(
            f"unknown CSR backend {backend!r}; expected one of "
            f"'auto', 'array', 'numpy'"
        )
    if backend not in _BACKENDS:
        raise GraphError(
            f"CSR backend {backend!r} is unavailable in this environment "
            f"(numpy failed to import); available: {available_csr_backends()}"
        )
    return backend


def csr_class(backend: Optional[str] = None) -> Type[CSRGraph]:
    """The CSR implementation class for ``backend``."""
    return _BACKENDS[resolve_csr_backend(backend)]


def build_csr(graph: Graph, backend: Optional[str] = None) -> CSRGraph:
    """Build the CSR form of ``graph`` with the selected backend."""
    return csr_class(backend).from_graph(graph)


__all__ = [
    "CSRGraph",
    "NumpyCSRGraph",
    "CSR_BACKEND_ENV",
    "available_csr_backends",
    "build_csr",
    "csr_class",
    "default_csr_backend",
    "resolve_csr_backend",
    "set_default_csr_backend",
    "normalize_adjacency",
    "offset_typecode",
    "neighbor_typecode",
    "offset_itemsize",
    "index_itemsize",
    "numpy_offset_dtype",
    "numpy_index_dtype",
]
