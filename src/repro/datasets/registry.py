"""Named surrogate datasets mirroring Table 2 of the paper.

The original evaluation uses 16 real-world graphs from SNAP and LAW.  Those
files are not redistributable with this repository and are far larger than a
pure-Python branch-and-bound can mine in reasonable time, so every paper
dataset is mapped to a *deterministic synthetic surrogate*: a generator call
with a fixed seed whose qualitative structure (skewed degrees, degeneracy much
smaller than ``n``, presence of sizeable k-plexes) plays the same role in the
experiments as the original graph.

Each :class:`DatasetSpec` records both the paper's reported statistics
(``paper_n``, ``paper_m``, ``paper_max_degree``, ``paper_degeneracy``) and the
builder for the scaled surrogate, so experiment outputs can show the
substitution explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import DatasetError
from ..graph import Graph, generators
from ..graph.properties import GraphSummary, summarize

GraphBuilder = Callable[[], Graph]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one dataset used by the experiments.

    Attributes
    ----------
    name:
        The paper's dataset name (e.g. ``"wiki-vote"``).
    category:
        ``"small"``, ``"medium"`` or ``"large"`` following the paper's
        bucketing by vertex count.
    paper_n, paper_m, paper_max_degree, paper_degeneracy:
        The statistics reported in Table 2 for the original graph.
    builder:
        Zero-argument callable constructing the deterministic surrogate.
    description:
        What the original dataset is and how the surrogate approximates it.
    """

    name: str
    category: str
    paper_n: int
    paper_m: int
    paper_max_degree: int
    paper_degeneracy: int
    builder: GraphBuilder = field(repr=False)
    description: str = ""

    def load(self) -> Graph:
        """Construct the surrogate graph."""
        return self.builder()

    def summary(self) -> GraphSummary:
        """Summarise the surrogate graph (Table 2 style row)."""
        return summarize(self.load(), name=self.name)

    def paper_row(self) -> Dict[str, object]:
        """Return the paper's reported Table 2 statistics as a dictionary."""
        return {
            "network": self.name,
            "n": self.paper_n,
            "m": self.paper_m,
            "max_degree": self.paper_max_degree,
            "degeneracy": self.paper_degeneracy,
        }


def _social_surrogate(seed: int, n: int, attachments: int, boost: int = 0) -> GraphBuilder:
    """Surrogate for social networks: preferential attachment + planted cliques."""

    def build() -> Graph:
        base = generators.barabasi_albert(n, attachments, seed=seed)
        if boost <= 0:
            return base
        extra = generators.ring_of_cliques(max(2, boost), 8)
        combined = generators.disjoint_union([base, extra])
        bridge_edges = list(combined.edges())
        # Attach each planted clique to the social core through a few edges so
        # the surrogate stays connected and the cliques enlarge seed subgraphs.
        for clique in range(max(2, boost)):
            hub = n + clique * 8
            bridge_edges.append((clique % n, hub))
        return Graph.from_edges(bridge_edges, vertices=range(combined.num_vertices))

    return build


def _web_surrogate(seed: int, communities: int, size: int, rewire: float) -> GraphBuilder:
    """Surrogate for web/collaboration graphs: dense communities, sparse links."""

    def build() -> Graph:
        return generators.relaxed_caveman(communities, size, rewire_probability=rewire, seed=seed)

    return build


def _powerlaw_surrogate(
    seed: int, n: int, exponent: float, max_degree: int, boost: int = 0
) -> GraphBuilder:
    """Surrogate for internet topology graphs: power-law configuration model.

    ``boost`` planted cliques of size 8 are attached to the topology so the
    surrogate, like the original AS-level graphs, contains k-plexes large
    enough to pass the size thresholds used in the experiments.
    """

    def build() -> Graph:
        base = generators.powerlaw_configuration(
            n, exponent=exponent, min_degree=2, max_degree=max_degree, seed=seed
        )
        if boost <= 0:
            return base
        extra = generators.ring_of_cliques(max(2, boost), 8)
        combined = generators.disjoint_union([base, extra])
        edges = list(combined.edges())
        for clique in range(max(2, boost)):
            hub = n + clique * 8
            edges.append((clique % n, hub))
        return Graph.from_edges(edges, vertices=range(combined.num_vertices))

    return build


_REGISTRY: Dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _REGISTRY[spec.name] = spec


_register(
    DatasetSpec(
        name="jazz",
        category="small",
        paper_n=198,
        paper_m=2742,
        paper_max_degree=100,
        paper_degeneracy=29,
        builder=_web_surrogate(seed=11, communities=12, size=16, rewire=0.35),
        description="Jazz musician collaboration network; surrogate: relaxed caveman communities.",
    )
)
_register(
    DatasetSpec(
        name="wiki-vote",
        category="small",
        paper_n=7115,
        paper_m=100762,
        paper_max_degree=1065,
        paper_degeneracy=53,
        builder=_social_surrogate(seed=23, n=420, attachments=9, boost=4),
        description="Wikipedia adminship votes; surrogate: preferential attachment + planted cliques.",
    )
)
_register(
    DatasetSpec(
        name="lastfm",
        category="small",
        paper_n=7624,
        paper_m=27806,
        paper_max_degree=216,
        paper_degeneracy=20,
        builder=_social_surrogate(seed=31, n=450, attachments=4, boost=3),
        description="LastFM Asia social network; surrogate: sparse preferential attachment.",
    )
)
_register(
    DatasetSpec(
        name="as-caida",
        category="medium",
        paper_n=26475,
        paper_m=53381,
        paper_max_degree=2628,
        paper_degeneracy=22,
        builder=_powerlaw_surrogate(seed=41, n=600, exponent=2.2, max_degree=60, boost=3),
        description="CAIDA AS-level internet topology; surrogate: power-law configuration model "
        "with planted dense pockets.",
    )
)
_register(
    DatasetSpec(
        name="soc-epinions",
        category="medium",
        paper_n=75879,
        paper_m=405740,
        paper_max_degree=3044,
        paper_degeneracy=67,
        builder=_social_surrogate(seed=47, n=520, attachments=10, boost=5),
        description="Epinions trust network; surrogate: preferential attachment + planted cliques.",
    )
)
_register(
    DatasetSpec(
        name="soc-slashdot",
        category="medium",
        paper_n=82168,
        paper_m=504230,
        paper_max_degree=2552,
        paper_degeneracy=55,
        builder=_social_surrogate(seed=53, n=540, attachments=11, boost=4),
        description="Slashdot Zoo links; surrogate: preferential attachment + planted cliques.",
    )
)
_register(
    DatasetSpec(
        name="email-euall",
        category="medium",
        paper_n=265009,
        paper_m=364481,
        paper_max_degree=7636,
        paper_degeneracy=37,
        builder=_social_surrogate(seed=59, n=640, attachments=5, boost=6),
        description="EU research institution email network; surrogate: sparse hub-dominated graph.",
    )
)
_register(
    DatasetSpec(
        name="com-dblp",
        category="medium",
        paper_n=317080,
        paper_m=1049866,
        paper_max_degree=343,
        paper_degeneracy=113,
        builder=_web_surrogate(seed=61, communities=26, size=18, rewire=0.2),
        description="DBLP co-authorship; surrogate: overlapping collaboration communities.",
    )
)
_register(
    DatasetSpec(
        name="amazon0505",
        category="medium",
        paper_n=410236,
        paper_m=2439437,
        paper_max_degree=2760,
        paper_degeneracy=10,
        builder=_web_surrogate(seed=67, communities=40, size=10, rewire=0.45),
        description="Amazon co-purchasing; surrogate: many small loosely-linked communities.",
    )
)
_register(
    DatasetSpec(
        name="soc-pokec",
        category="medium",
        paper_n=1632803,
        paper_m=22301964,
        paper_max_degree=14854,
        paper_degeneracy=47,
        builder=_social_surrogate(seed=71, n=700, attachments=12, boost=6),
        description="Pokec social network; surrogate: dense preferential attachment core.",
    )
)
_register(
    DatasetSpec(
        name="as-skitter",
        category="medium",
        paper_n=1696415,
        paper_m=11095298,
        paper_max_degree=35455,
        paper_degeneracy=111,
        builder=_powerlaw_surrogate(seed=73, n=760, exponent=2.0, max_degree=90, boost=4),
        description="Skitter traceroute topology; surrogate: heavy-tailed configuration model "
        "with planted dense pockets.",
    )
)
_register(
    DatasetSpec(
        name="enwiki-2021",
        category="large",
        paper_n=6253897,
        paper_m=136494843,
        paper_max_degree=232410,
        paper_degeneracy=178,
        builder=_social_surrogate(seed=79, n=900, attachments=14, boost=8),
        description="English Wikipedia link graph; surrogate: large hub-dominated social graph.",
    )
)
_register(
    DatasetSpec(
        name="arabic-2005",
        category="large",
        paper_n=22743881,
        paper_m=553903073,
        paper_max_degree=575628,
        paper_degeneracy=3247,
        builder=_web_surrogate(seed=83, communities=30, size=24, rewire=0.12),
        description="Arabic web crawl (LAW); surrogate: very dense host-level communities.",
    )
)
_register(
    DatasetSpec(
        name="uk-2005",
        category="large",
        paper_n=39454463,
        paper_m=783027125,
        paper_max_degree=1776858,
        paper_degeneracy=588,
        builder=_web_surrogate(seed=89, communities=34, size=22, rewire=0.15),
        description="UK web crawl (LAW); surrogate: dense host-level communities.",
    )
)
_register(
    DatasetSpec(
        name="it-2004",
        category="large",
        paper_n=41290648,
        paper_m=1027474947,
        paper_max_degree=1326744,
        paper_degeneracy=3224,
        builder=_web_surrogate(seed=97, communities=32, size=26, rewire=0.1),
        description="Italian web crawl (LAW); surrogate: very dense host-level communities.",
    )
)
_register(
    DatasetSpec(
        name="webbase-2001",
        category="large",
        paper_n=115554441,
        paper_m=854809761,
        paper_max_degree=816127,
        paper_degeneracy=1506,
        builder=_web_surrogate(seed=101, communities=38, size=20, rewire=0.18),
        description="WebBase 2001 crawl (LAW); surrogate: many dense host-level communities.",
    )
)


def dataset_names(category: Optional[str] = None) -> List[str]:
    """Return the registered dataset names, optionally filtered by category."""
    if category is None:
        return list(_REGISTRY)
    return [name for name, spec in _REGISTRY.items() if spec.category == category]


def get_dataset(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise DatasetError(f"unknown dataset {name!r}; known datasets: {known}") from exc


def load_dataset(name: str) -> Graph:
    """Build and return the surrogate graph registered under ``name``."""
    return get_dataset(name).load()


def all_datasets() -> List[DatasetSpec]:
    """Return every registered dataset specification."""
    return list(_REGISTRY.values())
