"""HTTP serving front-end with cache persistence and warm-start replay.

This subsystem completes the deployment story the serving layer
(:mod:`repro.service`) started: state that used to die with the process
now survives it, and clients no longer need to share the interpreter.

* :class:`KPlexHTTPServer` / :func:`serve_http` / :func:`start_server` —
  a stdlib ``ThreadingHTTPServer`` exposing ``POST /v1/solve``,
  ``POST|GET /v1/graphs``, ``GET /v1/metrics`` (JSON or Prometheus text),
  ``GET /healthz``, ``POST /v1/snapshot`` and the async ``/v1/jobs``
  lifecycle routes (submit / poll / list / cancel / chunked NDJSON result
  streaming), with structured error bodies and graceful
  drain-then-shutdown on SIGTERM;
* :mod:`repro.server.persistence` — versioned on-disk snapshots of the
  hot state (catalog registrations, the hottest replayable request specs,
  seed-context specs) validated against ``Graph.epoch`` on load;
* :func:`warm_start` — re-executes the persisted specs through the normal
  service path on boot, so a restarted server answers its recurring
  workload from a warm cache;
* :class:`ServiceClient` — a dependency-free Python client speaking the
  same wire contract.

Quick start::

    from repro.service import KPlexService
    from repro.server import ServiceClient, start_server

    service = KPlexService()
    server = start_server(service, port=0)
    client = ServiceClient(server.url)
    client.register("toy", edges=[(0, 1), (1, 2), (0, 2)])
    client.solve("toy", k=2, q=3)["count"]
    server.drain()
"""

from ..errors import RemoteServiceError, ServiceClosedError, SnapshotError
from .app import DEFAULT_HOST, KPlexHTTPServer, serve_http, start_server
from .client import ServiceClient
from .handlers import KPlexRequestHandler, MAX_BODY_BYTES
from .persistence import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    WarmStartReport,
    load_snapshot,
    quarantine_snapshot,
    save_snapshot,
    snapshot_service,
    warm_start,
)

__all__ = [
    "KPlexHTTPServer",
    "KPlexRequestHandler",
    "ServiceClient",
    "serve_http",
    "start_server",
    "snapshot_service",
    "save_snapshot",
    "load_snapshot",
    "quarantine_snapshot",
    "warm_start",
    "WarmStartReport",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "MAX_BODY_BYTES",
    "DEFAULT_HOST",
    "RemoteServiceError",
    "ServiceClosedError",
    "SnapshotError",
]
