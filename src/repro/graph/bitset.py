"""Integer-bitset utilities.

The branch-and-bound search manipulates small dense subgraphs (the seed
subgraphs ``G_i`` of Algorithm 2).  The fastest pure-Python representation for
their vertex sets and adjacency rows is an arbitrary-precision integer used as
a bitset: set membership is a shift-and-mask, intersection is ``&``, union is
``|``, and cardinality is :meth:`int.bit_count`.  This module collects the
small helpers used throughout :mod:`repro.core` and :mod:`repro.baselines`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List


def bit(index: int) -> int:
    """Return a bitset containing only ``index``."""
    return 1 << index


def mask_from_indices(indices: Iterable[int]) -> int:
    """Build a bitset from an iterable of non-negative integers."""
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bits_to_list(mask: int) -> List[int]:
    """Return the indices of the set bits of ``mask`` as a sorted list."""
    return list(iter_bits(mask))


def popcount(mask: int) -> int:
    """Return the number of set bits in ``mask``."""
    return mask.bit_count()


def contains(mask: int, index: int) -> bool:
    """Return ``True`` if ``index`` is a member of the bitset ``mask``."""
    return (mask >> index) & 1 == 1


def lowest_bit_index(mask: int) -> int:
    """Return the index of the lowest set bit of a non-empty ``mask``."""
    if not mask:
        raise ValueError("empty bitset has no lowest bit")
    return (mask & -mask).bit_length() - 1


def remove(mask: int, index: int) -> int:
    """Return ``mask`` with ``index`` cleared (no-op if it was not set)."""
    return mask & ~(1 << index)


def is_subset(inner: int, outer: int) -> bool:
    """Return ``True`` if every bit of ``inner`` is also set in ``outer``."""
    return inner & ~outer == 0


def subsets_of_size_at_most(mask: int, limit: int) -> Iterator[int]:
    """Yield every subset of ``mask`` with at most ``limit`` elements.

    The empty subset is always yielded first.  Subsets are produced in a
    set-enumeration (prefix) order over the bit indices, matching the order in
    which Algorithm 2 explores the sets ``S`` drawn from the two-hop
    neighbourhood of a seed vertex.
    """
    members = bits_to_list(mask)

    def extend(prefix: int, start: int, remaining: int) -> Iterator[int]:
        yield prefix
        if remaining == 0:
            return
        for position in range(start, len(members)):
            yield from extend(prefix | bit(members[position]), position + 1, remaining - 1)

    yield from extend(0, 0, limit)
