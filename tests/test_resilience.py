"""Unit tests for the fault-tolerance layer (:mod:`repro.resilience`).

Covers the building blocks in isolation — retry policy arithmetic, the
circuit-breaker state machine under a fake clock, fault-spec parsing and
driver-side budgets, the pool supervisor's recover/poison/degrade logic
against scripted executors — plus the parallel executor's integration
with them under injected worker faults.  End-to-end chaos over HTTP
lives in ``test_chaos.py``.
"""

import logging
from concurrent.futures import BrokenExecutor, Future

import pytest

from repro.core import enumerate_maximal_kplexes
from repro.errors import FaultInjectedError, PoisonTaskError
from repro.graph import invalidate
from repro.graph.generators import relaxed_caveman
from repro.parallel import ParallelConfig, parallel_enumerate_maximal_kplexes
from repro.resilience import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
    FaultInjector,
    PoolSupervisor,
    RetryPolicy,
    fault_injector,
    resilience_stats,
)


@pytest.fixture(autouse=True)
def _clean_globals():
    fault_injector().clear()
    resilience_stats().reset()
    yield
    fault_injector().clear()
    resilience_stats().reset()


# --------------------------------------------------------------------------- #
# RetryPolicy
# --------------------------------------------------------------------------- #
def test_retry_policy_attempt_budget():
    policy = RetryPolicy(max_attempts=3)
    assert policy.should_retry(1) and policy.should_retry(2)
    assert not policy.should_retry(3)
    assert not RetryPolicy(max_attempts=1).should_retry(1)


def test_retry_policy_backoff_is_exponential_and_clamped():
    policy = RetryPolicy(
        backoff_seconds=0.1, backoff_multiplier=2.0,
        max_backoff_seconds=0.3, jitter=0.0,
    )
    assert policy.backoff(1) == pytest.approx(0.1)
    assert policy.backoff(2) == pytest.approx(0.2)
    assert policy.backoff(3) == pytest.approx(0.3)  # clamped, not 0.4
    assert policy.backoff(9) == pytest.approx(0.3)
    assert policy.backoff(0) == 0.0


def test_retry_policy_jitter_is_deterministic_under_stub_rng():
    policy = RetryPolicy(backoff_seconds=1.0, max_backoff_seconds=1.0, jitter=0.5)
    assert policy.backoff(1, rng=lambda: 0.0) == pytest.approx(1.0)
    assert policy.backoff(1, rng=lambda: 1.0) == pytest.approx(0.5)
    # Jittered sleeps stay within [delay * (1 - jitter), delay].
    for _ in range(20):
        assert 0.5 <= policy.backoff(1) <= 1.0


def test_retry_policy_sleep_honours_longer_server_hint():
    policy = RetryPolicy(backoff_seconds=0.1, max_backoff_seconds=0.1, jitter=0.0)
    slept = []
    policy.sleep(1, retry_after=3.0, sleep=slept.append)
    assert slept == [3.0]
    # A shorter hint never shortens the local backoff.
    policy.sleep(1, retry_after=0.01, sleep=slept.append)
    assert slept[1] == pytest.approx(0.1)
    # A hostile header cannot hang the client past 60s.
    policy.sleep(1, retry_after=1e6, sleep=slept.append)
    assert slept[2] == 60.0


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_multiplier=0.5)


# --------------------------------------------------------------------------- #
# CircuitBreaker
# --------------------------------------------------------------------------- #
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_breaker_opens_at_threshold_and_recloses_via_probe():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=5.0, clock=clock)
    assert breaker.state == STATE_CLOSED and breaker.allow()
    breaker.record_failure()
    assert breaker.state == STATE_CLOSED  # below threshold
    breaker.record_failure()
    assert breaker.state == STATE_OPEN
    assert not breaker.allow()
    assert breaker.retry_after_seconds() == pytest.approx(5.0)

    clock.advance(5.1)
    assert breaker.state == STATE_HALF_OPEN
    assert breaker.allow()        # the single probe slot
    assert not breaker.allow()    # everyone else still refused
    breaker.record_success()
    assert breaker.state == STATE_CLOSED and breaker.allow()


def test_breaker_failed_probe_reopens_for_a_full_cooldown():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=2.0, clock=clock)
    breaker.record_failure()
    clock.advance(2.5)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == STATE_OPEN
    assert breaker.retry_after_seconds() == pytest.approx(2.0)
    assert not breaker.allow()


def test_breaker_cancel_probe_releases_the_slot():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=1.0, clock=clock)
    breaker.record_failure()
    clock.advance(1.5)
    assert breaker.allow()
    assert not breaker.allow()  # slot taken
    breaker.cancel_probe()      # the probe never ran (e.g. queue full)
    assert breaker.allow()      # slot handed out again — breaker cannot jam
    breaker.record_success()
    assert breaker.state == STATE_CLOSED


def test_breaker_success_resets_consecutive_failures():
    breaker = CircuitBreaker(failure_threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == STATE_CLOSED


def test_breaker_snapshot_counts_rejections_and_trips():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=10.0, clock=clock)
    breaker.record_failure()
    assert not breaker.allow()
    assert not breaker.allow()
    snap = breaker.snapshot()
    assert snap["state"] == STATE_OPEN and snap["is_open"] == 1
    assert snap["opened_total"] == 1 and snap["rejected_total"] == 2
    assert 0 < snap["cooldown_remaining_seconds"] <= 10.0


def test_breaker_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown_seconds=0)


# --------------------------------------------------------------------------- #
# FaultInjector
# --------------------------------------------------------------------------- #
def test_fault_spec_parsing_and_budgets():
    injector = FaultInjector("worker_kill:2,seed_delay:0.05")
    assert injector.enabled
    assert injector.fire("worker_kill") and injector.fire("worker_kill")
    assert not injector.fire("worker_kill")  # budget exhausted
    assert injector.param("seed_delay") == pytest.approx(0.05)
    assert injector.fire("seed_delay") and injector.fire("seed_delay")  # unlimited
    assert not injector.fire("pool_build")  # unarmed point never fires


def test_fault_budget_defaults_to_one_and_after_skips():
    injector = FaultInjector("worker_kill@2")
    assert not injector.fire("worker_kill")  # skip 1
    assert not injector.fire("worker_kill")  # skip 2
    assert injector.fire("worker_kill")      # default budget of 1
    assert not injector.fire("worker_kill")


def test_fault_spec_rejects_unknown_and_missing_args():
    with pytest.raises(ValueError, match="unknown fault point"):
        FaultInjector("reactor_meltdown:1")
    with pytest.raises(ValueError, match="needs an argument"):
        FaultInjector("seed_crash")


def test_fault_injector_configure_clear_and_snapshot():
    injector = FaultInjector()
    assert not injector.enabled and not injector.fire("worker_kill")
    injector.configure("snapshot_torn:1")
    assert injector.enabled
    assert injector.fire("snapshot_torn")
    snap = injector.snapshot()
    assert snap == [
        {"point": "snapshot_torn", "param": None, "budget_remaining": 0, "fired": 1}
    ]
    injector.clear()
    assert not injector.enabled


def test_global_injector_arms_from_environment(monkeypatch):
    import repro.resilience.faults as faults

    monkeypatch.setattr(faults, "_GLOBAL", None)
    monkeypatch.setenv(faults.ENV_VAR, "shm_fail:1")
    assert faults.fault_injector().fire("shm_fail")
    monkeypatch.setattr(faults, "_GLOBAL", None)


# --------------------------------------------------------------------------- #
# PoolSupervisor against scripted executors
# --------------------------------------------------------------------------- #
class DummyPool:
    def shutdown(self, wait=True, cancel_futures=False):
        pass


def _ok(value):
    future = Future()
    future.set_result(value)
    return future


def _broken():
    future = Future()
    future.set_exception(BrokenExecutor("worker died"))
    return future


def _fast_retry(attempts=3):
    return RetryPolicy(max_attempts=attempts, backoff_seconds=0.0, jitter=0.0)


def test_supervisor_retries_lost_tasks_after_rebuild():
    pools = []

    def pool_factory():
        pools.append(DummyPool())
        return pools[-1]

    crashes = {"remaining": 1}

    def submit(_pool, item):
        if item == "b" and crashes["remaining"] > 0:
            crashes["remaining"] -= 1
            return _broken()
        return _ok(item.upper())

    supervisor = PoolSupervisor(
        pool_factory, submit, str.upper,
        retry=_fast_retry(), stage_size=2, sleep=lambda _s: None,
    )
    results, report = supervisor.run(["a", "b", "c"])
    assert results == ["A", "B", "C"]  # item order, despite the retry
    assert report.pool_failures == 1 and report.pool_recoveries == 1
    assert not report.degraded_serial
    assert len(pools) == 2  # original + one rebuild
    assert resilience_stats().get("pool_recoveries") == 1
    assert not resilience_stats().pool_degraded


def test_supervisor_identifies_deterministic_crasher_as_poison():
    def submit(_pool, item):
        return _broken() if item == "b" else _ok(item)

    supervisor = PoolSupervisor(
        lambda: DummyPool(), submit, lambda item: item,
        retry=_fast_retry(), stage_size=3, sleep=lambda _s: None,
    )
    with pytest.raises(PoisonTaskError) as excinfo:
        supervisor.run(["a", "b", "c"])
    assert excinfo.value.item == "b"
    assert excinfo.value.mode == "crash"
    assert excinfo.value.attempts >= 2  # isolated re-run confirmed it
    assert resilience_stats().get("poison_tasks") == 1


def test_supervisor_retries_task_exceptions_then_raises_poison():
    attempts = {"n": 0}

    def submit(_pool, _item):
        attempts["n"] += 1
        future = Future()
        future.set_exception(RuntimeError("flaky"))
        return future

    supervisor = PoolSupervisor(
        lambda: DummyPool(), submit, lambda item: item,
        retry=_fast_retry(attempts=3), sleep=lambda _s: None,
    )
    with pytest.raises(PoisonTaskError) as excinfo:
        supervisor.run(["x"])
    assert attempts["n"] == 3  # the full retry budget was spent
    assert excinfo.value.mode == "error"
    assert isinstance(excinfo.value.__cause__, RuntimeError)
    assert resilience_stats().get("task_retries") == 2


def test_supervisor_degrades_to_serial_when_pool_cannot_build():
    def pool_factory():
        raise RuntimeError("no processes for you")

    supervisor = PoolSupervisor(
        pool_factory, lambda _pool, _item: _ok(None), str.upper,
        retry=_fast_retry(), sleep=lambda _s: None,
    )
    results, report = supervisor.run(["a", "b"])
    assert results == ["A", "B"]
    assert report.degraded_serial
    assert resilience_stats().get("serial_fallbacks") == 1
    assert resilience_stats().pool_degraded


def test_supervisor_degrades_after_unattributable_crashes():
    # Each round loses a two-task batch, so no single task is ever isolated
    # as the culprit; after max_pool_failures the supervisor stops cycling
    # pools and finishes serially.
    def submit(_pool, _item):
        return _broken()

    supervisor = PoolSupervisor(
        lambda: DummyPool(), submit, str.upper,
        retry=_fast_retry(attempts=99), stage_size=2,
        max_pool_failures=1, sleep=lambda _s: None,
    )
    results, report = supervisor.run(["a", "b"])
    assert sorted(results) == ["A", "B"]
    assert report.degraded_serial and report.pool_failures == 1
    assert set(report.crash_suspects) == {"a", "b"}


def test_supervisor_submit_time_breakage_does_not_blame_the_task():
    # A BrokenExecutor raised at submit() means the pool died before the
    # task ever ran: it must be retried without earning crash suspicion.
    state = {"broken_submits": 1}
    pools = []

    def pool_factory():
        pools.append(DummyPool())
        return pools[-1]

    def submit(_pool, item):
        if state["broken_submits"] > 0:
            state["broken_submits"] -= 1
            raise BrokenExecutor("pool already dead")
        return _ok(item)

    supervisor = PoolSupervisor(
        pool_factory, submit, lambda item: item,
        retry=_fast_retry(), sleep=lambda _s: None,
    )
    results, report = supervisor.run(["a"])
    assert results == ["a"]
    assert report.pool_failures == 1 and report.pool_recoveries == 1
    with pytest.raises(PoisonTaskError, match="crashed its worker"):
        # Contrast: a task that is *lost in flight* twice in a row, the
        # second time alone, is poison.
        PoolSupervisor(
            lambda: DummyPool(), lambda _p, _i: _broken(), lambda item: item,
            retry=_fast_retry(), sleep=lambda _s: None,
        ).run(["a"])


# --------------------------------------------------------------------------- #
# Executor integration under injected faults
# --------------------------------------------------------------------------- #
def _graph(seed=13):
    graph = relaxed_caveman(5, 5, 0.3, seed=seed)
    invalidate(graph)
    return graph


def _process_config(**kwargs):
    return ParallelConfig(num_workers=2, use_processes=True, **kwargs)


def test_worker_kill_recovery_is_bit_identical():
    graph = _graph()
    expected = {p.as_set() for p in enumerate_maximal_kplexes(graph, 2, 4)}
    fault_injector().configure("worker_kill:1")
    result = parallel_enumerate_maximal_kplexes(graph, 2, 4, _process_config())
    assert {p.as_set() for p in result.kplexes} == expected
    assert result.statistics.pool_recoveries >= 1
    assert result.statistics.serial_fallbacks == 0


def test_deterministic_seed_crash_fails_with_poison_diagnostics():
    graph = _graph()
    fault_injector().configure("seed_crash:0")
    with pytest.raises(PoisonTaskError) as excinfo:
        parallel_enumerate_maximal_kplexes(graph, 2, 4, _process_config())
    assert excinfo.value.mode == "crash"
    assert excinfo.value.item == 0
    assert "refusing to retry" in str(excinfo.value)


def test_seed_exception_is_retried_then_fails_structured():
    graph = _graph()
    fault_injector().configure("seed_exception:0")
    with pytest.raises(PoisonTaskError) as excinfo:
        parallel_enumerate_maximal_kplexes(
            graph, 2, 4,
            _process_config(retry=RetryPolicy(max_attempts=2, backoff_seconds=0.0)),
        )
    assert excinfo.value.mode == "error"
    assert isinstance(excinfo.value.__cause__, FaultInjectedError)


def test_thread_mode_seed_delay_fires_with_identical_results():
    # Latency faults apply in both pool modes; thread mode enacts the sleep
    # in the mining thread (GIL released), never the crash faults.
    graph = _graph()
    expected = {p.as_set() for p in enumerate_maximal_kplexes(graph, 2, 4)}
    fault_injector().configure("seed_delay:0.001")
    result = parallel_enumerate_maximal_kplexes(
        graph, 2, 4, ParallelConfig(num_workers=2, use_processes=False)
    )
    assert {p.as_set() for p in result.kplexes} == expected
    snapshot = {entry["point"]: entry for entry in fault_injector().snapshot()}
    assert snapshot["seed_delay"]["fired"] >= 1


def test_thread_mode_seed_exception_raises_structured():
    graph = _graph()
    fault_injector().configure("seed_exception:0")
    with pytest.raises(FaultInjectedError):
        parallel_enumerate_maximal_kplexes(
            graph, 2, 4, ParallelConfig(num_workers=2, use_processes=False)
        )


def test_pool_build_fault_degrades_to_serial_with_full_results():
    graph = _graph()
    expected = {p.as_set() for p in enumerate_maximal_kplexes(graph, 2, 4)}
    fault_injector().configure("pool_build:99")
    result = parallel_enumerate_maximal_kplexes(graph, 2, 4, _process_config())
    assert {p.as_set() for p in result.kplexes} == expected
    assert result.statistics.serial_fallbacks == 1


def test_shm_publish_failure_falls_back_loudly(caplog):
    graph = _graph()
    expected = {p.as_set() for p in enumerate_maximal_kplexes(graph, 2, 4)}
    fault_injector().configure("shm_fail:1")
    with caplog.at_level(logging.WARNING, logger="repro.resilience"):
        result = parallel_enumerate_maximal_kplexes(
            graph, 2, 4, _process_config(shared_memory=True)
        )
    assert {p.as_set() for p in result.kplexes} == expected
    assert resilience_stats().get("shm_fallbacks") == 1
    assert any("falling back to pickled" in rec.message for rec in caplog.records)
